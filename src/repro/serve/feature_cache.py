"""Shared template-keyed feature cache for templated serving workloads.

Production query streams are dominated by *templates*: the same SQL
shape issued over and over with different constants (dashboards, ORM
queries, prepared statements).  For the MSCN featurization, everything
except the normalized literal slot of each predicate row is a pure
function of that shape — table one-hots, the entire join feature
array, and the column⊕operator prefix of every predicate row.

:class:`FeatureCache` memoizes those structure rows across queries,
across micro-batches, and across the sketches registered with one
server, keyed by ``(featurizer identity, template)`` where the template
is :func:`repro.core.featurization.template_key`.  On a hit, the
featurizer skips all vocabulary lookups and one-hot construction and
only recomputes what genuinely differs between two instances of a
template: the sample-bitmap concatenation and the normalized literal
values.  The assembled arrays are bit-identical to an uncached
featurization, so the cache is a throughput optimization, never a
semantic change.

Entries are scoped to a featurizer *object* — a rebuilt sketch carries
a fresh featurizer, so its stale entries can never be served (they miss
on the identity check and are overwritten).  The backing store is a
:class:`repro.cache.TTLCache`: size-bounded so a long-running server
fed ever-new templates cannot grow without limit, and optionally
TTL-bounded so entries pinning a dropped sketch's featurizer alive are
reclaimed.  All access is lock-protected; the cache may be shared
between servers and threads.
"""

from __future__ import annotations

import threading

from ..cache import TTLCache
from ..core.featurization import Featurizer, TemplateFeatures

#: Default number of distinct (featurizer, template) entries retained.
DEFAULT_FEATURE_CACHE_SIZE = 4096


class FeatureCache:
    """Thread-safe, bounded store of :class:`TemplateFeatures` entries.

    Implements the ``template_cache`` protocol consumed by
    :meth:`repro.core.featurization.Featurizer.featurize_batch`:
    ``lookup(featurizer, key)`` returning an entry or ``None``, and
    ``store(featurizer, key, entry)``.
    """

    def __init__(
        self,
        maxsize: int = DEFAULT_FEATURE_CACHE_SIZE,
        ttl_seconds: float | None = None,
        clock=None,
    ):
        kwargs = {} if clock is None else {"clock": clock}
        self._store = TTLCache(maxsize=maxsize, ttl_seconds=ttl_seconds, **kwargs)
        self._lock = threading.Lock()

    def lookup(self, featurizer: Featurizer, key: tuple) -> TemplateFeatures | None:
        """Cached structure rows for ``key`` built by *this* featurizer.

        Scoping is by ``id(featurizer)`` in the key, and every entry
        holds a strong reference to the featurizer it was built against
        — so while an entry is cached, its id cannot be reused by a
        different live featurizer, and a hit is always vocabulary-exact.
        """
        with self._lock:
            return self._store.get((id(featurizer), key))

    def store(self, featurizer: Featurizer, key: tuple, entry: TemplateFeatures) -> None:
        with self._lock:
            self._store.put((id(featurizer), key), entry)

    def purge_expired(self) -> int:
        """Reap every expired entry now; returns how many were dropped.

        Expiry is otherwise lazy (on lookup), which never fires for
        entries whose featurizer was dropped — their keys are never
        looked up again.  The async server calls this from its flush
        loop's idle path so such orphans are actually reclaimed.
        """
        with self._lock:
            return self._store.purge_expired()

    @property
    def ttl_seconds(self) -> float | None:
        return self._store.ttl_seconds

    def clear(self) -> None:
        with self._lock:
            self._store.clear()

    def __len__(self) -> int:
        with self._lock:
            return len(self._store)

    def stats(self):
        """Hit/miss/eviction counters of the backing TTL store."""
        with self._lock:
            return self._store.stats()

    @property
    def expirations(self) -> int:
        with self._lock:
            return self._store.expirations

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"FeatureCache(size={s.size}/{s.maxsize}, hits={s.hits}, "
            f"misses={s.misses})"
        )


__all__ = ["FeatureCache", "DEFAULT_FEATURE_CACHE_SIZE"]

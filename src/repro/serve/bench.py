"""Serving throughput measurement (shared by CLI and benchmark harness).

Compares three ways of answering the same workload with one sketch:

* the **single-query loop** — ``sketch.estimate(q, use_cache=False)``
  per query, the seed repository's only path;
* the **vectorized batch** — ``sketch.estimate_many(..., use_cache=False)``
  on the distinct queries (isolates the pure batching win: shared
  predicate masks, shared featurization rows, one forward pass);
* the **serving engine** — a :class:`~repro.serve.server.SketchServer`
  flush over the full stream with micro-batching and the LRU cache
  (what production traffic would see; repeated queries hit the cache).

Estimates from every path are compared for numerical identity.  Batched
BLAS kernels may round differently from single-row kernels by a few
ULPs (batch-size-invariant bitwise output is not a guarantee any tensor
runtime makes), so "identical" here means a maximum relative difference
below ``IDENTITY_RTOL`` — observed values are ~1e-15, i.e. the noise of
one double-precision rounding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..workload.query import Query
from .server import ServeConfig, SketchServer

#: Maximum relative difference tolerated between the single-query and
#: batched paths before the benchmark declares them non-identical.
IDENTITY_RTOL = 1e-9

#: The ``--tiny`` smoke configuration shared by ``repro bench-serve``
#: and ``benchmarks/bench_serving.py``: small enough for CI seconds,
#: large enough to exercise batching, routing, and the cache.
TINY_BENCH_ARGS = {
    "scale": 0.05,
    "queries": 300,
    "epochs": 2,
    "samples": 50,
    "hidden": 16,
    "distinct": 12,
    "batch": 64,
}


def apply_tiny_args(args) -> None:
    """Overwrite an argparse namespace with the tiny smoke configuration."""
    for key, value in TINY_BENCH_ARGS.items():
        setattr(args, key, value)


@dataclass
class ServingBenchResult:
    """Headline numbers of one serving benchmark run."""

    n_queries: int
    n_distinct: int
    single_seconds: float
    vector_seconds: float
    served_seconds: float
    max_rel_diff_vector: float
    max_rel_diff_served: float
    n_forward_batches: int
    n_cache_hits: int

    @property
    def single_qps(self) -> float:
        return self.n_queries / self.single_seconds

    @property
    def vector_qps(self) -> float:
        return self.n_distinct / self.vector_seconds

    @property
    def served_qps(self) -> float:
        return self.n_queries / self.served_seconds

    @property
    def vector_speedup(self) -> float:
        """Per-query speedup of the vectorized path on distinct queries."""
        per_single = self.single_seconds / self.n_queries
        per_vector = self.vector_seconds / self.n_distinct
        return per_single / per_vector

    @property
    def served_speedup(self) -> float:
        return self.single_seconds / self.served_seconds

    @property
    def identical(self) -> bool:
        return (
            self.max_rel_diff_vector <= IDENTITY_RTOL
            and self.max_rel_diff_served <= IDENTITY_RTOL
        )

    def report(self) -> str:
        lines = [
            f"workload          : {self.n_queries} queries "
            f"({self.n_distinct} distinct)",
            f"single-query loop : {self.single_seconds:8.3f}s "
            f"({self.single_qps:10.0f} q/s)",
            f"vectorized batch  : {self.vector_seconds:8.3f}s "
            f"({self.vector_qps:10.0f} q/s on distinct, "
            f"{self.vector_speedup:5.1f}x per query)",
            f"sketch server     : {self.served_seconds:8.3f}s "
            f"({self.served_qps:10.0f} q/s, {self.served_speedup:5.1f}x)",
            f"forward batches   : {self.n_forward_batches} "
            f"(cache hits: {self.n_cache_hits})",
            f"max rel. diff     : vectorized {self.max_rel_diff_vector:.2e}, "
            f"served {self.max_rel_diff_served:.2e} "
            f"({'identical' if self.identical else 'NOT identical'} at "
            f"rtol={IDENTITY_RTOL:.0e})",
        ]
        return "\n".join(lines)


def tile_workload(queries: Sequence[Query], size: int) -> list[Query]:
    """Repeat a distinct workload round-robin up to ``size`` requests.

    Serving traffic repeats queries (dashboards, retried transactions,
    popular templates); tiling a JOB-light-style workload to the target
    batch size models that while keeping every distinct query in play.
    """
    if not queries:
        return []
    return [queries[i % len(queries)] for i in range(size)]


def run_serving_benchmark(
    manager,
    sketch_name: str,
    queries: Sequence[Query],
    batch_size: int = 512,
    max_batch_size: int = 256,
) -> ServingBenchResult:
    """Measure single-query vs batched serving on ``queries``.

    ``queries`` are the distinct workload; they are tiled round-robin to
    ``batch_size`` requests.  The sketch's cache is cleared before each
    timed pass so no path benefits from earlier passes.
    """
    sketch = manager.get_sketch(sketch_name)
    workload = tile_workload(list(queries), batch_size)
    distinct = list(dict.fromkeys(workload))

    # Pass 1: the seed path — one estimate() per request, no caching.
    sketch.clear_cache()
    t0 = time.perf_counter()
    single = np.array([sketch.estimate(q, use_cache=False) for q in workload])
    single_seconds = time.perf_counter() - t0

    # Pass 2: vectorized batch over the distinct queries, cache off.
    sketch.clear_cache()
    t0 = time.perf_counter()
    vector = sketch.estimate_many(distinct, use_cache=False)
    vector_seconds = time.perf_counter() - t0

    # Pass 3: the serving engine over the full stream, cold cache.
    sketch.clear_cache()
    server = SketchServer(
        manager, ServeConfig(max_batch_size=max_batch_size, use_cache=True)
    )
    t0 = time.perf_counter()
    responses = server.serve(workload, sketch=sketch_name)
    served_seconds = time.perf_counter() - t0
    served = np.array([r.estimate for r in responses])
    if not all(r.ok for r in responses):
        raise RuntimeError(
            "serving benchmark hit errors: "
            + "; ".join(r.error for r in responses if not r.ok)
        )

    single_by_query = {q: e for q, e in zip(workload, single)}
    vector_expected = np.array([single_by_query[q] for q in distinct])
    max_rel = lambda a, b: float(np.max(np.abs(a - b) / np.maximum(np.abs(b), 1e-300))) if len(a) else 0.0
    return ServingBenchResult(
        n_queries=len(workload),
        n_distinct=len(distinct),
        single_seconds=single_seconds,
        vector_seconds=vector_seconds,
        served_seconds=served_seconds,
        max_rel_diff_vector=max_rel(vector, vector_expected),
        max_rel_diff_served=max_rel(served, single),
        n_forward_batches=server.stats.n_forward_batches,
        n_cache_hits=server.stats.n_cache_hits,
    )

"""Serving measurement harness (shared by CLI and benchmark scripts).

Two scenarios live here.  :func:`run_serving_benchmark` compares three
ways of answering the same workload with one sketch:

* the **single-query loop** — ``sketch.estimate(q, use_cache=False)``
  per query, the seed repository's only path;
* the **vectorized batch** — ``sketch.estimate_many(..., use_cache=False)``
  on the distinct queries (isolates the pure batching win: shared
  predicate masks, shared featurization rows, one forward pass);
* the **serving engine** — a :class:`~repro.serve.server.SketchServer`
  flush over the full stream with micro-batching and the LRU cache
  (what production traffic would see; repeated queries hit the cache).

:func:`run_concurrent_benchmark` measures the asynchronous engine
(:class:`~repro.serve.async_server.AsyncSketchServer`) under concurrent
clients: a high-load phase (N client threads firing the stream through
``submit``) for throughput and client-observed latency percentiles, and
a low-load phase (one closed-loop client) showing the ``max_wait_ms``
bound on queueing delay.

Estimates from every path are compared for numerical identity.  Batched
BLAS kernels may round differently from single-row kernels by a few
ULPs (batch-size-invariant bitwise output is not a guarantee any tensor
runtime makes), so "identical" here means a maximum relative difference
below ``IDENTITY_RTOL`` — observed values are ~1e-15, i.e. the noise of
one double-precision rounding.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Sequence

import numpy as np

from ..errors import ReproError
from ..workload.query import Query
from .server import ServeConfig, SketchServer

#: Maximum relative difference tolerated between the single-query and
#: batched paths before the benchmark declares them non-identical.
IDENTITY_RTOL = 1e-9

#: The ``--tiny`` smoke configuration shared by ``repro bench-serve``
#: and ``benchmarks/bench_serving.py``: small enough for CI seconds,
#: large enough to exercise batching, routing, and the cache.
TINY_BENCH_ARGS = {
    "scale": 0.05,
    "queries": 300,
    "epochs": 2,
    "samples": 50,
    "hidden": 16,
    "distinct": 12,
    "batch": 64,
}


def apply_tiny_args(args) -> None:
    """Overwrite an argparse namespace with the tiny smoke configuration."""
    for key, value in TINY_BENCH_ARGS.items():
        setattr(args, key, value)


@dataclass
class ServingBenchResult:
    """Headline numbers of one serving benchmark run."""

    n_queries: int
    n_distinct: int
    single_seconds: float
    vector_seconds: float
    served_seconds: float
    max_rel_diff_vector: float
    max_rel_diff_served: float
    n_forward_batches: int
    n_cache_hits: int
    n_errors: int = 0

    @property
    def all_failed(self) -> bool:
        """Every served request errored — the result is meaningless."""
        return self.n_queries > 0 and self.n_errors >= self.n_queries

    @property
    def single_qps(self) -> float:
        return self.n_queries / self.single_seconds

    @property
    def vector_qps(self) -> float:
        return self.n_distinct / self.vector_seconds

    @property
    def served_qps(self) -> float:
        return self.n_queries / self.served_seconds

    @property
    def vector_speedup(self) -> float:
        """Per-query speedup of the vectorized path on distinct queries."""
        per_single = self.single_seconds / self.n_queries
        per_vector = self.vector_seconds / self.n_distinct
        return per_single / per_vector

    @property
    def served_speedup(self) -> float:
        return self.single_seconds / self.served_seconds

    @property
    def identical(self) -> bool:
        return (
            self.max_rel_diff_vector <= IDENTITY_RTOL
            and self.max_rel_diff_served <= IDENTITY_RTOL
        )

    def report(self) -> str:
        lines = [
            f"workload          : {self.n_queries} queries "
            f"({self.n_distinct} distinct)",
            f"single-query loop : {self.single_seconds:8.3f}s "
            f"({self.single_qps:10.0f} q/s)",
            f"vectorized batch  : {self.vector_seconds:8.3f}s "
            f"({self.vector_qps:10.0f} q/s on distinct, "
            f"{self.vector_speedup:5.1f}x per query)",
            f"sketch server     : {self.served_seconds:8.3f}s "
            f"({self.served_qps:10.0f} q/s, {self.served_speedup:5.1f}x)",
            f"forward batches   : {self.n_forward_batches} "
            f"(cache hits: {self.n_cache_hits}, errors: {self.n_errors})",
            f"max rel. diff     : vectorized {self.max_rel_diff_vector:.2e}, "
            f"served {self.max_rel_diff_served:.2e} "
            f"({'identical' if self.identical else 'NOT identical'} at "
            f"rtol={IDENTITY_RTOL:.0e})",
        ]
        return "\n".join(lines)


def tile_workload(queries: Sequence[Query], size: int) -> list[Query]:
    """Repeat a distinct workload round-robin up to ``size`` requests.

    Serving traffic repeats queries (dashboards, retried transactions,
    popular templates); tiling a JOB-light-style workload to the target
    batch size models that while keeping every distinct query in play.
    """
    if not queries:
        return []
    return [queries[i % len(queries)] for i in range(size)]


def _estimate_or_nan(sketch, query: Query) -> float:
    """Uncached single estimate; NaN when the sketch rejects the query."""
    try:
        return sketch.estimate(query, use_cache=False)
    except ReproError:
        return float("nan")


def _max_rel_diff(a: np.ndarray, b: np.ndarray) -> float:
    """Max relative difference of ``a`` against the reference ``b``.

    Positions where the *reference* is NaN are excused (the query fails
    the single-query path too, so there is nothing to compare).  A NaN
    in ``a`` where the reference is finite is a divergence, not an
    excuse — it returns ``inf`` so the identity gate fails loudly
    instead of silently masking a broken batched path.
    """
    a, b = np.asarray(a, dtype=np.float64), np.asarray(b, dtype=np.float64)
    mask = np.isfinite(b)
    if not mask.any():
        return 0.0
    a, b = a[mask], b[mask]
    if not np.isfinite(a).all():
        return float("inf")
    return float(np.max(np.abs(a - b) / np.maximum(np.abs(b), 1e-300)))


def run_serving_benchmark(
    manager,
    sketch_name: str,
    queries: Sequence[Query],
    batch_size: int = 512,
    max_batch_size: int = 256,
    executor: str = "inline",
    executor_workers: int = 2,
) -> ServingBenchResult:
    """Measure single-query vs batched serving on ``queries``.

    ``queries`` are the distinct workload; they are tiled round-robin to
    ``batch_size`` requests.  The sketch's cache is cleared before each
    timed pass so no path benefits from earlier passes.  ``executor``
    selects where the serving engine runs its micro-batches (see
    :mod:`repro.serve.executor`).
    """
    sketch = manager.get_sketch(sketch_name)
    workload = tile_workload(list(queries), batch_size)
    distinct = list(dict.fromkeys(workload))

    # Pass 1: the seed path — one estimate() per request, no caching.
    # A failing query yields NaN (excluded from the identity check)
    # instead of aborting the run: the serving passes isolate the same
    # failures per request, and the caller reports the error count.
    sketch.clear_cache()
    t0 = time.perf_counter()
    single = np.array([_estimate_or_nan(sketch, q) for q in workload])
    single_seconds = time.perf_counter() - t0

    # Pass 2: vectorized batch over the distinct queries, cache off.
    sketch.clear_cache()
    t0 = time.perf_counter()
    try:
        vector = sketch.estimate_many(distinct, use_cache=False)
    except ReproError:
        vector = np.array([_estimate_or_nan(sketch, q) for q in distinct])
    vector_seconds = time.perf_counter() - t0

    # Pass 3: the serving engine over the full stream, cold cache.
    sketch.clear_cache()
    server = SketchServer(
        manager,
        ServeConfig(
            max_batch_size=max_batch_size,
            use_cache=True,
            executor=executor,
            executor_workers=executor_workers,
        ),
    )
    t0 = time.perf_counter()
    responses = server.serve(workload, sketch=sketch_name)
    served_seconds = time.perf_counter() - t0
    server.close()
    # Errors are isolated per request by the server; they are *counted*
    # here (and surfaced in the report / exit code by the callers)
    # rather than aborting the run, and identity is checked over the
    # requests that were actually answered.
    ok = np.array([r.ok for r in responses], dtype=bool)
    served = np.array([r.estimate if r.ok else np.nan for r in responses])

    single_by_query = {q: e for q, e in zip(workload, single)}
    vector_expected = np.array([single_by_query[q] for q in distinct])
    return ServingBenchResult(
        n_queries=len(workload),
        n_distinct=len(distinct),
        single_seconds=single_seconds,
        vector_seconds=vector_seconds,
        served_seconds=served_seconds,
        max_rel_diff_vector=_max_rel_diff(vector, vector_expected),
        max_rel_diff_served=_max_rel_diff(served, single),
        n_forward_batches=server.stats.n_forward_batches,
        n_cache_hits=server.stats.n_cache_hits,
        n_errors=int((~ok).sum()),
    )


# ----------------------------------------------------------------------
# concurrent-client scenario (the asynchronous engine)
# ----------------------------------------------------------------------

@dataclass
class ConcurrentBenchResult:
    """Headline numbers of one concurrent serving benchmark run.

    Three synchronous baselines are measured (the sync server is not
    thread-safe, so concurrent clients must serialize around a mutex):

    * ``sync_request_seconds`` — live-traffic reality: each client
      holds one request at a time and flushes it alone
      (``serve([q])`` under the mutex).  This is what the PR-1 engine
      gives concurrent traffic, and the comparison the throughput gate
      uses: no cross-client batching without the async machinery.
    * ``sync_chunked_seconds`` — each client flushes its whole
      round-robin share in one call: only possible when clients own
      request batches up front (log replay, not live traffic).
    * ``sync_single_seconds`` — one caller flushing the entire stream,
      the offline ideal no concurrent deployment can reach.  On a
      single-core host the async engine approaches but cannot beat it
      (same model work plus future/lock overhead); on multi-core hosts
      submission and the flush loop overlap.

    ``async_seconds`` is the :class:`~repro.serve.async_server.
    AsyncSketchServer` fed the same stream by ``n_clients`` threads.
    Latency percentiles are client-observed (submit to future
    resolution).  The low-load wait percentiles come from a separate
    one-client closed-loop phase and demonstrate the ``max_wait_ms``
    bound on queueing delay.
    """

    n_requests: int
    n_distinct: int
    n_clients: int
    max_wait_ms: float
    sync_single_seconds: float
    sync_chunked_seconds: float
    sync_request_seconds: float
    async_seconds: float
    p50_latency: float        # high-load, client-observed (seconds)
    p99_latency: float
    low_load_p50_wait: float  # one-client phase, server queue wait (seconds)
    low_load_p99_wait: float
    max_rel_diff: float       # async estimates vs the single-query path
    n_deduped: int
    n_forward_batches: int
    n_fast_cache_hits: int
    n_errors: int

    @property
    def sync_single_qps(self) -> float:
        return self.n_requests / self.sync_single_seconds

    @property
    def sync_chunked_qps(self) -> float:
        return self.n_requests / self.sync_chunked_seconds

    @property
    def sync_request_qps(self) -> float:
        return self.n_requests / self.sync_request_seconds

    @property
    def async_qps(self) -> float:
        return self.n_requests / self.async_seconds

    @property
    def throughput_ratio(self) -> float:
        """Async vs the sync engine serving live concurrent requests."""
        return self.async_qps / self.sync_request_qps

    @property
    def chunked_ratio(self) -> float:
        """Async vs concurrent clients flushing pre-owned chunks."""
        return self.async_qps / self.sync_chunked_qps

    @property
    def single_caller_ratio(self) -> float:
        """Async throughput vs the single-caller whole-stream ideal."""
        return self.async_qps / self.sync_single_qps

    @property
    def identical(self) -> bool:
        return self.max_rel_diff <= IDENTITY_RTOL

    @property
    def p99_wait_bounded(self) -> bool:
        """Low-load p99 queue wait within 2x the configured max wait."""
        return self.low_load_p99_wait <= 2.0 * self.max_wait_ms / 1000.0

    @property
    def all_failed(self) -> bool:
        return self.n_requests > 0 and self.n_errors >= self.n_requests

    def report(self) -> str:
        lines = [
            f"workload          : {self.n_requests} requests "
            f"({self.n_distinct} distinct), {self.n_clients} clients",
            f"sync (per request): {self.sync_request_seconds:8.3f}s "
            f"({self.sync_request_qps:10.0f} q/s; live traffic: mutex, "
            f"one request per flush)",
            f"sync (per chunk)  : {self.sync_chunked_seconds:8.3f}s "
            f"({self.sync_chunked_qps:10.0f} q/s; clients own request "
            f"batches up front)",
            f"sync (1 caller)   : {self.sync_single_seconds:8.3f}s "
            f"({self.sync_single_qps:10.0f} q/s; whole-stream ideal)",
            f"async server      : {self.async_seconds:8.3f}s "
            f"({self.async_qps:10.0f} q/s: {self.throughput_ratio:5.2f}x "
            f"live sync, {self.chunked_ratio:5.2f}x chunked, "
            f"{self.single_caller_ratio:5.2f}x the ideal)",
            f"client latency    : p50 {self.p50_latency * 1000:7.2f}ms, "
            f"p99 {self.p99_latency * 1000:7.2f}ms (high load)",
            f"queue wait        : p50 {self.low_load_p50_wait * 1000:7.2f}ms, "
            f"p99 {self.low_load_p99_wait * 1000:7.2f}ms at low load "
            f"(bound: 2 x max_wait = {2 * self.max_wait_ms:.0f}ms, "
            f"{'OK' if self.p99_wait_bounded else 'EXCEEDED'})",
            f"dedup / cache     : {self.n_deduped} deduped, "
            f"{self.n_fast_cache_hits} fast cache hits, "
            f"{self.n_forward_batches} forward batches, "
            f"{self.n_errors} errors",
            f"max rel. diff     : {self.max_rel_diff:.2e} vs single-query "
            f"path ({'identical' if self.identical else 'NOT identical'} at "
            f"rtol={IDENTITY_RTOL:.0e})",
        ]
        return "\n".join(lines)


def _run_client_threads(n_clients: int, body) -> float:
    """Run ``body(client_id)`` on ``n_clients`` threads; time only the work.

    Threads are created and started before the clock; a barrier releases
    them together so thread spawn cost is not charged to the engine
    under test.
    """
    import threading as _threading

    barrier = _threading.Barrier(n_clients + 1)

    def runner(client_id: int) -> None:
        barrier.wait()
        body(client_id)

    threads = [
        _threading.Thread(target=runner, args=(c,)) for c in range(n_clients)
    ]
    for thread in threads:
        thread.start()
    barrier.wait()
    t0 = time.perf_counter()
    for thread in threads:
        thread.join()
    return time.perf_counter() - t0


def run_concurrent_benchmark(
    manager,
    sketch_name: str,
    queries: Sequence[Query],
    batch_size: int = 512,
    n_clients: int = 8,
    max_batch_size: int = 256,
    max_wait_ms: float = 10.0,
    min_idle_ms: float = 0.5,
    low_load_requests: int = 32,
    repeats: int = 3,
) -> ConcurrentBenchResult:
    """Measure the async engine under ``n_clients`` concurrent threads.

    Phases, each from a cold result cache:

    1. **Reference** — uncached single-query estimates for the whole
       stream (the parity baseline).
    2. **Sync, single caller** — one :class:`SketchServer` flush over
       the stream: the offline ideal.
    3. **Sync, concurrent** — the same server driven by ``n_clients``
       threads around a mutex, in both live-traffic form (one request
       per flush — the gate baseline) and chunk-owning form (each
       client flushes its whole share).
    4. **Async high load** — ``n_clients`` threads hand their share to
       ``submit_many`` and gather futures; throughput and
       client-observed latency percentiles are recorded.
    5. **Low load** — one closed-loop client sends distinct queries so
       every request meets the flush deadline alone, demonstrating the
       ``max_wait_ms`` queueing bound.

    Each timed phase runs ``repeats`` times (cold cache every time) and
    the best run is reported — the phases take milliseconds, so
    scheduler noise on a shared host would otherwise dominate the
    engine comparison.
    """
    import threading as _threading

    from .async_server import AsyncServeConfig, AsyncSketchServer, percentile

    sketch = manager.get_sketch(sketch_name)
    workload = tile_workload(list(queries), batch_size)
    distinct = list(dict.fromkeys(workload))
    shares = [
        [workload[i] for i in range(c, len(workload), n_clients)]
        for c in range(n_clients)
    ]

    # Phase 1: uncached single-query reference.
    sketch.clear_cache()
    reference = np.array([_estimate_or_nan(sketch, q) for q in workload])

    # Phase 2: the synchronous batched server, one caller, cold cache.
    def run_sync_single() -> tuple[float, None]:
        sketch.clear_cache()
        sync_server = SketchServer(
            manager, ServeConfig(max_batch_size=max_batch_size, use_cache=True)
        )
        t0 = time.perf_counter()
        sync_server.serve(workload, sketch=sketch_name)
        return time.perf_counter() - t0, None

    sync_single_seconds, _ = min(
        (run_sync_single() for _ in range(repeats)), key=lambda r: r[0]
    )

    # Phase 3: the synchronous server under concurrent clients.
    def run_sync_concurrent(per_request: bool) -> tuple[float, None]:
        sketch.clear_cache()
        sync_server = SketchServer(
            manager, ServeConfig(max_batch_size=max_batch_size, use_cache=True)
        )
        mutex = _threading.Lock()

        def sync_client(client_id: int) -> None:
            if per_request:
                # Live traffic: a client holds one request at a time,
                # so without the async engine there is nothing to batch.
                for query in shares[client_id]:
                    with mutex:
                        sync_server.serve([query], sketch=sketch_name)
            else:
                with mutex:
                    sync_server.serve(shares[client_id], sketch=sketch_name)

        return _run_client_threads(n_clients, sync_client), None

    sync_request_seconds, _ = min(
        (run_sync_concurrent(True) for _ in range(repeats)), key=lambda r: r[0]
    )
    sync_chunked_seconds, _ = min(
        (run_sync_concurrent(False) for _ in range(repeats)), key=lambda r: r[0]
    )

    # Phase 4: the async engine fed by concurrent client threads.
    config = AsyncServeConfig(
        max_batch_size=max_batch_size,
        max_wait_ms=max_wait_ms,
        min_idle_ms=min_idle_ms,
    )

    def run_async() -> tuple[float, dict]:
        sketch.clear_cache()
        estimates = np.full(len(workload), np.nan)
        latencies = [0.0] * len(workload)
        errors = [0] * n_clients
        server = AsyncSketchServer(manager, config)

        def async_client(client_id: int) -> None:
            indices = list(range(client_id, len(workload), n_clients))
            t_submit = time.perf_counter()
            futures = server.submit_many(shares[client_id], sketch=sketch_name)
            for i, future in zip(indices, futures):
                response = future.result()
                latencies[i] = time.perf_counter() - t_submit
                if response.ok:
                    estimates[i] = response.estimate
                else:
                    errors[client_id] += 1

        with server:
            seconds = _run_client_threads(n_clients, async_client)
        return seconds, {
            "estimates": estimates,
            "latencies": latencies,
            "errors": sum(errors),
            "stats": server.stats,
        }

    async_seconds, async_run = min(
        (run_async() for _ in range(repeats)), key=lambda r: r[0]
    )

    # Phase 5: low load — one closed-loop client, distinct queries, so
    # every request sits alone in its buffer until a flush deadline.
    sketch.clear_cache()
    low_server = AsyncSketchServer(manager, config)
    with low_server:
        for query in tile_workload(distinct, low_load_requests):
            low_server.submit(query, sketch=sketch_name).result()
    waits = low_server.wait_summary()

    return ConcurrentBenchResult(
        n_requests=len(workload),
        n_distinct=len(distinct),
        n_clients=n_clients,
        max_wait_ms=max_wait_ms,
        sync_single_seconds=sync_single_seconds,
        sync_chunked_seconds=sync_chunked_seconds,
        sync_request_seconds=sync_request_seconds,
        async_seconds=async_seconds,
        p50_latency=percentile(async_run["latencies"], 0.50),
        p99_latency=percentile(async_run["latencies"], 0.99),
        low_load_p50_wait=waits["p50"],
        low_load_p99_wait=waits["p99"],
        max_rel_diff=_max_rel_diff(async_run["estimates"], reference),
        n_deduped=async_run["stats"].n_deduped,
        n_forward_batches=async_run["stats"].n_forward_batches,
        n_fast_cache_hits=async_run["stats"].n_fast_cache_hits,
        n_errors=async_run["errors"],
    )


# ----------------------------------------------------------------------
# executor scale-out scenario (inline vs thread vs process)
# ----------------------------------------------------------------------

@dataclass
class ExecutorBenchResult:
    """One executor's timing + parity on the model-bound stream.

    The stream is served with the result cache **off** so every
    micro-batch performs real featurization and model work — the
    CPU-bound scenario multi-core scale-out targets.  ``max_rel_diff``
    compares against the inline executor's estimates on the same
    stream (the engine-parity acceptance bound is 1e-12).
    """

    executor: str
    workers: int
    seconds: float
    qps: float
    n_forward_batches: int
    n_fallbacks: int
    max_rel_diff: float


@dataclass
class ExecutorSuiteResult:
    """Timings of every executor on the same stream, inline as baseline."""

    n_requests: int
    max_batch_size: int
    results: list  # [ExecutorBenchResult], inline first

    def result_for(self, name: str) -> ExecutorBenchResult | None:
        for result in self.results:
            if result.executor == name:
                return result
        return None

    def speedup(self, name: str) -> float:
        """Throughput of ``name`` relative to the inline executor."""
        inline = self.result_for("inline")
        other = self.result_for(name)
        if inline is None or other is None or other.seconds <= 0:
            return float("nan")
        return inline.seconds / other.seconds

    @property
    def parity_ok(self) -> bool:
        return all(r.max_rel_diff <= EXECUTOR_PARITY_RTOL for r in self.results)

    def report(self) -> str:
        lines = [
            f"executor scale-out: {self.n_requests} uncached requests, "
            f"micro-batches of {self.max_batch_size}"
        ]
        for r in self.results:
            lines.append(
                f"{r.executor:>8} x{r.workers}: {r.seconds:8.3f}s "
                f"({r.qps:10.0f} q/s, {self.speedup(r.executor):5.2f}x inline; "
                f"{r.n_forward_batches} forwards, {r.n_fallbacks} fallbacks, "
                f"max rel diff {r.max_rel_diff:.2e})"
            )
        return "\n".join(lines)


#: Acceptance bound for inline vs thread vs process estimates.
EXECUTOR_PARITY_RTOL = 1e-12


def run_executor_benchmark(
    manager,
    sketch_name: str,
    queries: Sequence[Query],
    batch_size: int = 512,
    max_batch_size: int = 64,
    workers: int = 2,
    executors: Sequence[str] = ("inline", "thread", "process"),
    repeats: int = 3,
) -> ExecutorSuiteResult:
    """Serve the same uncached stream through each executor and compare.

    ``max_batch_size`` deliberately defaults smaller than the serving
    default so the stream splits into several micro-batches — the units
    a thread/process executor overlaps.  Caching is off: a cached
    stream measures dict lookups, not scale-out — and with no caches in
    play the sketch is **not** cleared between repeats, so this is a
    steady-state measurement (``clear_cache`` advances the sketch's
    snapshot token, which would force the process executor to rebuild
    its worker pool inside the timed region — a retrain cost, not a
    serving cost).  Each executor runs ``repeats`` times (best run
    reported); one untimed warmup run builds pools and warms the
    per-worker mask memos and buffer pools for every executor alike.
    """
    manager.get_sketch(sketch_name)  # raise early on an unknown name
    workload = tile_workload(list(queries), batch_size)
    results: list[ExecutorBenchResult] = []
    inline_estimates: np.ndarray | None = None

    for name in executors:
        config = ServeConfig(
            max_batch_size=max_batch_size,
            use_cache=False,
            executor=name,
            executor_workers=workers,
        )
        best = None
        with SketchServer(manager, config) as server:
            # Warm up outside the timed region: process pools fork and
            # receive snapshots here, and every executor's scratch
            # pools/memos settle onto the workload's shapes.
            server.serve(workload, sketch=sketch_name)
            for _ in range(repeats):
                # Per-run counter deltas, so the reported forwards and
                # fallbacks describe the best run alone — not the
                # cumulative warmup+repeats total.
                forwards0 = server.stats.n_forward_batches
                fallbacks0 = server.stats.n_executor_fallbacks
                t0 = time.perf_counter()
                responses = server.serve(workload, sketch=sketch_name)
                seconds = time.perf_counter() - t0
                run_stats = (
                    server.stats.n_forward_batches - forwards0,
                    server.stats.n_executor_fallbacks - fallbacks0,
                )
                if best is None or seconds < best[0]:
                    best = (seconds, responses, run_stats)
            seconds, responses, (n_forwards, n_fallbacks) = best
        estimates = np.array(
            [r.estimate if r.ok else np.nan for r in responses]
        )
        if inline_estimates is None:
            inline_estimates = estimates
            diff = 0.0
        else:
            diff = _max_rel_diff(estimates, inline_estimates)
        results.append(
            ExecutorBenchResult(
                executor=name,
                workers=1 if name == "inline" else workers,
                seconds=seconds,
                qps=len(workload) / seconds,
                n_forward_batches=n_forwards,
                n_fallbacks=n_fallbacks,
                max_rel_diff=diff,
            )
        )
    return ExecutorSuiteResult(
        n_requests=len(workload),
        max_batch_size=max_batch_size,
        results=results,
    )


# ----------------------------------------------------------------------
# overload scenario (admission control)
# ----------------------------------------------------------------------

@dataclass
class OverloadBenchResult:
    """Outcome of slamming a bounded queue with a burst.

    Demonstrates the admission-control contract: queue depth never
    exceeds ``max_queue_depth``, the overflow is shed with structured
    ``code="shed"`` responses at submit time, every accepted request is
    served by the drain, and **every** future resolves (zero abandoned).
    """

    n_requests: int
    max_queue_depth: int
    n_shed: int
    n_served: int
    n_unresolved: int
    max_depth_seen: int

    @property
    def bounded(self) -> bool:
        return self.max_depth_seen <= self.max_queue_depth

    @property
    def ok(self) -> bool:
        return (
            self.bounded
            and self.n_unresolved == 0
            and self.n_shed + self.n_served == self.n_requests
            and self.n_shed > 0
        )

    def report(self) -> str:
        return (
            f"overload: {self.n_requests} burst requests vs "
            f"max_queue_depth={self.max_queue_depth} -> "
            f"{self.n_served} served, {self.n_shed} shed "
            f"(max depth seen {self.max_depth_seen}, "
            f"{self.n_unresolved} unresolved futures) "
            f"[{'OK' if self.ok else 'FAILED'}]"
        )


def run_overload_benchmark(
    manager,
    sketch_name: str,
    queries: Sequence[Query],
    burst_size: int = 512,
    max_queue_depth: int = 64,
) -> OverloadBenchResult:
    """Submit a burst far beyond ``max_queue_depth`` and audit the shed.

    The flush deadline is set beyond the test horizon so the whole
    burst lands in the buffers before anything drains; the close() then
    drains exactly the accepted prefix.  Dedup and caching are off so
    every request is its own queue entry.
    """
    from .async_server import AsyncServeConfig, AsyncSketchServer

    sketch = manager.get_sketch(sketch_name)
    sketch.clear_cache()
    workload = tile_workload(list(queries), burst_size)
    config = AsyncServeConfig(
        max_batch_size=max_queue_depth,
        max_wait_ms=600_000.0,
        min_idle_ms=None,
        use_cache=False,
        dedup=False,
        max_queue_depth=max_queue_depth,
    )
    server = AsyncSketchServer(manager, config).start()
    futures = server.submit_many(workload, sketch=sketch_name)
    server.close()
    # The engine's lifetime high-water mark, not a racy post-hoc
    # ``pending`` read: the flush loop may drain the buffers the moment
    # ``submit_many`` releases the lock, but the peak recorded *inside*
    # the intake critical section cannot be missed — an over-admitting
    # engine would show a peak above the configured bound here.
    max_depth_seen = int(server.stats_summary()["queue_depth_peak"])
    responses = []
    n_unresolved = 0
    for future in futures:
        if future.done():
            responses.append(future.result())
        else:
            n_unresolved += 1
    n_shed = sum(1 for r in responses if r.code == "shed")
    n_served = sum(1 for r in responses if r.ok)
    return OverloadBenchResult(
        n_requests=len(workload),
        max_queue_depth=max_queue_depth,
        n_shed=n_shed,
        n_served=n_served,
        n_unresolved=n_unresolved,
        max_depth_seen=max_depth_seen,
    )


# ----------------------------------------------------------------------
# gateway scenario (multi-node scale-out + kill-a-backend audit)
# ----------------------------------------------------------------------

@dataclass
class GatewayScaleoutPoint:
    """Throughput of one fleet size on the closed-loop client stream."""

    n_backends: int
    seconds: float
    qps: float
    max_rel_diff: float
    n_errors: int


@dataclass
class GatewayBenchResult:
    """Gateway scale-out curve + the kill-a-backend degradation audit.

    ``scaleout`` holds one point per fleet size (each backend a live
    in-process :class:`~repro.serve.http.SketchHTTPServer` replicating
    the same sketch): closed-loop client threads drive the gateway, so
    round-robin replica selection turns added backends into added
    throughput.  Parity is gated at ``EXECUTOR_PARITY_RTOL`` (1e-12)
    against the single-query path — the fleet must not change numbers.

    The kill audit runs a 2-replica fleet, closes one backend while the
    stream is in flight, and verifies the degradation contract: every
    future resolves (zero hung), failures carry only structured
    ``route``/``shed`` codes, and the survivors stay exact.
    """

    n_requests: int
    n_clients: int
    scaleout: list  # [GatewayScaleoutPoint], 1 backend first
    kill_n_requests: int
    kill_n_ok: int
    kill_n_structured: int
    kill_n_unstructured: int
    kill_n_unresolved: int
    kill_max_rel_diff: float
    kill_n_failovers: int

    def point_for(self, n_backends: int) -> GatewayScaleoutPoint | None:
        for point in self.scaleout:
            if point.n_backends == n_backends:
                return point
        return None

    def speedup(self, n_backends: int) -> float:
        """Throughput of an ``n_backends`` fleet relative to one backend."""
        one = self.point_for(1)
        many = self.point_for(n_backends)
        if one is None or many is None or many.seconds <= 0:
            return float("nan")
        return one.seconds / many.seconds

    @property
    def parity_ok(self) -> bool:
        return (
            all(p.max_rel_diff <= EXECUTOR_PARITY_RTOL for p in self.scaleout)
            and self.kill_max_rel_diff <= EXECUTOR_PARITY_RTOL
        )

    @property
    def kill_ok(self) -> bool:
        """Zero hung futures, only structured failures, survivors exist."""
        return (
            self.kill_n_unresolved == 0
            and self.kill_n_unstructured == 0
            and self.kill_n_ok > 0
        )

    def report(self) -> str:
        lines = [
            f"gateway scale-out : {self.n_requests} uncached requests, "
            f"{self.n_clients} closed-loop clients"
        ]
        for point in self.scaleout:
            lines.append(
                f"  {point.n_backends} backend(s): {point.seconds:8.3f}s "
                f"({point.qps:10.0f} q/s, "
                f"{self.speedup(point.n_backends):5.2f}x one backend; "
                f"{point.n_errors} errors, "
                f"max rel diff {point.max_rel_diff:.2e})"
            )
        lines.append(
            f"  kill-a-backend  : {self.kill_n_ok}/{self.kill_n_requests} "
            f"served, {self.kill_n_structured} structured route/shed, "
            f"{self.kill_n_unstructured} unstructured, "
            f"{self.kill_n_unresolved} hung futures, "
            f"{self.kill_n_failovers} failovers, survivors max rel diff "
            f"{self.kill_max_rel_diff:.2e} "
            f"[{'OK' if self.kill_ok else 'FAILED'}]"
        )
        return "\n".join(lines)


def _spawn_fleet(
    sketch,
    n_backends: int,
    max_batch_size: int,
    max_queue_depth: int | None = None,
):
    """``n_backends`` live front doors, each replicating ``sketch``."""
    from ..demo.manager import SketchManager
    from .http import SketchHTTPServer

    servers = []
    for _ in range(n_backends):
        manager = SketchManager(db=None)
        manager.register_sketch(sketch)
        servers.append(
            SketchHTTPServer(
                manager,
                ServeConfig(
                    max_batch_size=max_batch_size,
                    use_cache=False,
                    dedup=False,
                    max_queue_depth=max_queue_depth,
                ),
                port=0,
            ).start()
        )
    return servers


def run_gateway_benchmark(
    manager,
    sketch_name: str,
    queries: Sequence[Query],
    batch_size: int = 256,
    max_batch_size: int = 64,
    backend_counts: Sequence[int] = (1, 2, 4),
    n_clients: int = 8,
) -> GatewayBenchResult:
    """Measure gateway scale-out (1 -> N backends) and the kill audit.

    Every fleet size serves the same uncached stream through the same
    gateway configuration, driven by ``n_clients`` closed-loop threads
    (one request in flight per client — live traffic, the shape
    replication actually helps).  Caching and dedup are off on the
    backends so added replicas add real model work, not dict lookups.

    The kill audit then runs the stream against a 2-replica fleet and
    closes one backend after the first half has been submitted,
    auditing the structured-degradation contract.
    """
    from .gateway import SketchGateway

    sketch = manager.get_sketch(sketch_name)
    workload = tile_workload(list(queries), batch_size)
    shares = [
        [workload[i] for i in range(c, len(workload), n_clients)]
        for c in range(n_clients)
    ]

    sketch.clear_cache()
    reference = np.array([_estimate_or_nan(sketch, q) for q in workload])
    reference_by_query = {q: e for q, e in zip(workload, reference)}

    # -- scale-out curve ------------------------------------------------
    points: list[GatewayScaleoutPoint] = []
    for n_backends in backend_counts:
        sketch.clear_cache()
        servers = _spawn_fleet(sketch, n_backends, max_batch_size)
        estimates = np.full(len(workload), np.nan)
        n_errors = [0] * n_clients
        try:
            with SketchGateway(
                [server.url for server in servers],
                health_interval_s=None,
                connection_workers=n_clients,
            ) as gateway:

                def client_body(client_id: int) -> None:
                    indices = range(client_id, len(workload), n_clients)
                    for i, query in zip(indices, shares[client_id]):
                        response = gateway.estimate(query)
                        if response.ok:
                            estimates[i] = response.estimate
                        else:
                            n_errors[client_id] += 1

                seconds = _run_client_threads(n_clients, client_body)
        finally:
            for server in servers:
                server.close()
        points.append(
            GatewayScaleoutPoint(
                n_backends=n_backends,
                seconds=seconds,
                qps=len(workload) / seconds,
                max_rel_diff=_max_rel_diff(estimates, reference),
                n_errors=sum(n_errors),
            )
        )

    # -- kill-a-backend audit ------------------------------------------
    sketch.clear_cache()
    servers = _spawn_fleet(sketch, 2, max_batch_size)
    kill_at = len(workload) // 2
    futures = []
    try:
        with SketchGateway(
            [server.url for server in servers],
            health_interval_s=None,
            connection_workers=n_clients,
        ) as gateway:
            for i, query in enumerate(workload):
                futures.append(gateway.submit(query))
                if i == kill_at:
                    servers[1].close()  # one replica dies mid-stream
            n_ok = n_structured = n_unstructured = n_unresolved = 0
            survivor_diff = 0.0
            for query, future in zip(workload, futures):
                try:
                    response = future.result(timeout=60.0)
                except Exception:
                    n_unresolved += 1
                    continue
                if response.ok:
                    n_ok += 1
                    expected = reference_by_query[query]
                    if np.isfinite(expected):
                        survivor_diff = max(
                            survivor_diff,
                            abs(response.estimate - expected)
                            / max(abs(expected), 1e-300),
                        )
                elif response.code in ("route", "shed"):
                    n_structured += 1
                else:
                    n_unstructured += 1
            n_failovers = gateway.stats_summary()["gateway"]["failovers"]
    finally:
        for server in servers:
            server.close()

    return GatewayBenchResult(
        n_requests=len(workload),
        n_clients=n_clients,
        scaleout=points,
        kill_n_requests=len(workload),
        kill_n_ok=n_ok,
        kill_n_structured=n_structured,
        kill_n_unstructured=n_unstructured,
        kill_n_unresolved=n_unresolved,
        kill_max_rel_diff=survivor_diff,
        kill_n_failovers=n_failovers,
    )


# ----------------------------------------------------------------------
# HTTP front-door scenario (wire overhead)
# ----------------------------------------------------------------------

@dataclass
class HttpBenchResult:
    """HTTP round-trip cost vs the in-process service on one stream.

    Four passes over the same uncached workload, through the same
    engine configuration: in-process per-request (closed-loop
    ``submit().result()``), in-process batched (one ``submit_many``),
    HTTP per-request (``RemoteSketchServer.estimate`` round trips), and
    HTTP batched (one ``POST /v1/estimate_batch``).  The per-request
    deltas are the wire+marshalling overhead the front door adds; the
    batched pair shows how one-envelope batching amortizes it.
    ``max_rel_diff`` compares every pass's estimates against the
    in-process per-request reference (bound: 1e-12, the executor-parity
    bar — the wire must not change numbers).
    """

    n_requests: int
    inproc_request_seconds: float
    inproc_request_p50: float
    inproc_request_p99: float
    inproc_batch_seconds: float
    http_request_seconds: float
    http_request_p50: float
    http_request_p99: float
    http_batch_seconds: float
    server_reported_p50: float
    max_rel_diff: float
    n_errors: int

    @property
    def overhead_p50_ms(self) -> float:
        """Per-request wire overhead at the median (milliseconds)."""
        return (self.http_request_p50 - self.inproc_request_p50) * 1000.0

    @property
    def overhead_p99_ms(self) -> float:
        return (self.http_request_p99 - self.inproc_request_p99) * 1000.0

    @property
    def batch_overhead_per_request_ms(self) -> float:
        """Amortized wire overhead per request when batched (ms)."""
        return (
            (self.http_batch_seconds - self.inproc_batch_seconds)
            / self.n_requests
            * 1000.0
        )

    @property
    def batch_amortization(self) -> float:
        """How much batching shrinks the per-request wire overhead."""
        per_request = self.http_request_seconds - self.inproc_request_seconds
        batched = self.http_batch_seconds - self.inproc_batch_seconds
        if batched <= 0:
            return float("inf")
        return per_request / batched

    @property
    def parity_ok(self) -> bool:
        return self.max_rel_diff <= EXECUTOR_PARITY_RTOL

    @property
    def ok(self) -> bool:
        return self.parity_ok and self.n_errors == 0

    def report(self) -> str:
        return "\n".join([
            f"http front door   : {self.n_requests} uncached requests",
            f"  per-request     : in-process p50 "
            f"{self.inproc_request_p50 * 1000:7.2f}ms / p99 "
            f"{self.inproc_request_p99 * 1000:7.2f}ms; http p50 "
            f"{self.http_request_p50 * 1000:7.2f}ms / p99 "
            f"{self.http_request_p99 * 1000:7.2f}ms "
            f"(overhead p50 {self.overhead_p50_ms:+.2f}ms)",
            f"  batched stream  : in-process {self.inproc_batch_seconds:7.3f}s; "
            f"http {self.http_batch_seconds:7.3f}s "
            f"({self.batch_overhead_per_request_ms:+.3f}ms/request, "
            f"{self.batch_amortization:.1f}x overhead amortization)",
            f"  server-side p50 : {self.server_reported_p50 * 1000:7.2f}ms "
            f"(from response envelopes)",
            f"  parity          : max rel diff {self.max_rel_diff:.2e} "
            f"({self.n_errors} errors) "
            f"[{'OK' if self.ok else 'FAILED'}]",
        ])


def run_http_benchmark(
    manager,
    sketch_name: str,
    queries: Sequence[Query],
    batch_size: int = 256,
    max_batch_size: int = 64,
    max_wait_ms: float = 2.0,
) -> HttpBenchResult:
    """Measure the HTTP front door against the in-process service.

    Caching and dedup are off so every request performs real model
    work in *every* pass (a warm cache would measure dict lookups over
    the wire); the same ``ServeConfig`` drives both the in-process
    :class:`~repro.serve.async_server.AsyncSketchServer` and the
    :class:`~repro.serve.http.SketchHTTPServer`, so the only variable
    is the transport.  One untimed warmup request per service settles
    buffer pools.  The SDK is pinned to ``transport="json"`` here — this
    scenario measures the HTTP/JSON front door (over the SDK's pooled
    keep-alive connections); the negotiated binary framing is measured
    separately by ``benchmarks/bench_transport.py``.
    """
    from .async_server import AsyncServeConfig, AsyncSketchServer
    from .client import RemoteSketchServer
    from .http import SketchHTTPServer

    manager.get_sketch(sketch_name)  # raise early on an unknown name
    workload = tile_workload(list(queries), batch_size)
    config_kwargs = dict(
        max_batch_size=max_batch_size,
        max_wait_ms=max_wait_ms,
        use_cache=False,
        dedup=False,
    )
    results: dict[str, np.ndarray] = {}
    n_errors = 0

    # -- in-process passes ---------------------------------------------
    with AsyncSketchServer(
        manager, AsyncServeConfig(**config_kwargs)
    ) as inproc:
        inproc.estimate(workload[0], sketch=sketch_name)  # warmup
        latencies = []
        t0 = time.perf_counter()
        estimates = []
        for query in workload:
            t1 = time.perf_counter()
            response = inproc.estimate(query, sketch=sketch_name)
            latencies.append(time.perf_counter() - t1)
            estimates.append(response.estimate if response.ok else np.nan)
            n_errors += 0 if response.ok else 1
        inproc_request_seconds = time.perf_counter() - t0
        results["inproc_request"] = np.array(estimates)
        inproc_lat = np.array(latencies)

        t0 = time.perf_counter()
        responses = [
            f.result() for f in inproc.submit_many(workload, sketch=sketch_name)
        ]
        inproc_batch_seconds = time.perf_counter() - t0
        n_errors += sum(0 if r.ok else 1 for r in responses)
        results["inproc_batch"] = np.array(
            [r.estimate if r.ok else np.nan for r in responses]
        )

    # -- HTTP passes ----------------------------------------------------
    with SketchHTTPServer(
        manager, ServeConfig(**config_kwargs), port=0
    ) as front_door:
        with RemoteSketchServer(front_door.url) as client:
            client.estimate(workload[0], sketch=sketch_name)  # warmup
            latencies = []
            t0 = time.perf_counter()
            estimates = []
            for query in workload:
                t1 = time.perf_counter()
                response = client.estimate(query, sketch=sketch_name)
                latencies.append(time.perf_counter() - t1)
                estimates.append(response.estimate if response.ok else np.nan)
                n_errors += 0 if response.ok else 1
            http_request_seconds = time.perf_counter() - t0
            results["http_request"] = np.array(estimates)
            http_lat = np.array(latencies)
            server_reported_p50 = client.server_latency.summary()["p50"]

            t0 = time.perf_counter()
            responses = client.estimate_many(workload, sketch=sketch_name)
            http_batch_seconds = time.perf_counter() - t0
            n_errors += sum(0 if r.ok else 1 for r in responses)
            results["http_batch"] = np.array(
                [r.estimate if r.ok else np.nan for r in responses]
            )

    reference = results["inproc_request"]
    max_rel_diff = max(
        _max_rel_diff(estimates, reference)
        for name, estimates in results.items()
        if name != "inproc_request"
    )
    return HttpBenchResult(
        n_requests=len(workload),
        inproc_request_seconds=inproc_request_seconds,
        inproc_request_p50=float(np.percentile(inproc_lat, 50)),
        inproc_request_p99=float(np.percentile(inproc_lat, 99)),
        inproc_batch_seconds=inproc_batch_seconds,
        http_request_seconds=http_request_seconds,
        http_request_p50=float(np.percentile(http_lat, 50)),
        http_request_p99=float(np.percentile(http_lat, 99)),
        http_batch_seconds=http_batch_seconds,
        server_reported_p50=server_reported_p50,
        max_rel_diff=max_rel_diff,
        n_errors=n_errors,
    )


# ----------------------------------------------------------------------
# bursty stress scenario (templated traffic vs the gateway)
# ----------------------------------------------------------------------

@dataclass
class BurstyStressResult:
    """Outcome of replaying skewed/bursty templated traffic at a fleet.

    A :class:`~repro.workload.traffic.TrafficShaper` drives the gateway
    open-loop (arrivals come from the schedule, not from completions),
    so ON windows overrun the backends' bounded queues on purpose.  The
    audit is the serving tier's whole degradation contract at once:
    every future resolves (zero hung), every failure carries a
    structured code from ``RESPONSE_CODES``, and no backend's intake
    ever exceeded its configured ``max_queue_depth``.
    """

    n_requests: int
    n_backends: int
    max_queue_depth: int
    replay: object  # ReplayResult (duck-typed to avoid a workload import)
    #: Per-backend lifetime ``queue_depth_peak`` (one entry per backend).
    queue_depth_peaks: list
    n_failovers: int

    @property
    def bounded(self) -> bool:
        """No backend's intake high-water mark exceeded its bound."""
        return all(peak <= self.max_queue_depth for peak in self.queue_depth_peaks)

    @property
    def ok(self) -> bool:
        return (
            self.replay.ok
            and self.bounded
            and self.replay.n_ok > 0
        )

    def audit(self) -> dict:
        """JSON-friendly audit block (bench gates read this)."""
        block = self.replay.audit()
        block.update(
            n_backends=self.n_backends,
            max_queue_depth=self.max_queue_depth,
            queue_depth_peaks=list(self.queue_depth_peaks),
            bounded=self.bounded,
            n_failovers=self.n_failovers,
            stress_ok=self.ok,
        )
        return block

    def report(self) -> str:
        replay = self.replay
        shed = replay.code_counts.get("shed", 0)
        deadline = replay.code_counts.get("deadline", 0)
        other = replay.n_failed - shed - deadline - replay.n_unstructured
        return (
            f"bursty stress     : {self.n_requests} open-loop requests vs "
            f"{self.n_backends} backend(s), max_queue_depth="
            f"{self.max_queue_depth}\n"
            f"  outcome         : {replay.n_ok} served, {shed} shed, "
            f"{deadline} deadline, {other} other structured, "
            f"{replay.n_unstructured} unstructured, "
            f"{replay.n_unresolved} hung futures\n"
            f"  queue depth     : peaks {self.queue_depth_peaks} "
            f"(bound {'held' if self.bounded else 'VIOLATED'})\n"
            f"  rate            : {replay.achieved_qps:8.0f} q/s achieved, "
            f"p99 latency {replay.latency_p99_ms:7.2f}ms "
            f"[{'OK' if self.ok else 'FAILED'}]"
        )


def run_bursty_stress_benchmark(
    manager,
    sketch_name: str,
    suite,
    traffic=None,
    n_backends: int = 2,
    max_queue_depth: int = 32,
    max_batch_size: int = 32,
    seed=0,
) -> BurstyStressResult:
    """Replay a skewed, bursty suite stream against a gateway fleet.

    ``suite`` is a :class:`~repro.workload.suite.TemplateSuite` (labels
    not required — only the query instances are replayed); ``traffic``
    a :class:`~repro.workload.traffic.TrafficConfig` (defaults chosen
    to overrun ``max_queue_depth`` during ON windows).  Backends run
    with caching and dedup off and a bounded queue, so every accepted
    request is real model work and the overflow must shed.
    """
    from ..workload.traffic import TrafficConfig, TrafficShaper
    from .gateway import SketchGateway

    sketch = manager.get_sketch(sketch_name)
    sketch.clear_cache()
    traffic = traffic or TrafficConfig()
    shaper = TrafficShaper(suite, traffic, seed=seed)
    servers = _spawn_fleet(
        sketch, n_backends, max_batch_size, max_queue_depth=max_queue_depth
    )
    try:
        with SketchGateway(
            [server.url for server in servers],
            health_interval_s=None,
        ) as gateway:
            replay = shaper.replay(gateway)
            stats = gateway.stats_summary()
            peaks = [
                int(summary["queue_depth_peak"])
                for summary in stats["backends"].values()
                if summary is not None
            ]
            n_failovers = int(stats["gateway"]["failovers"])
    finally:
        for server in servers:
            server.close()
    return BurstyStressResult(
        n_requests=replay.n_requests,
        n_backends=n_backends,
        max_queue_depth=max_queue_depth,
        replay=replay,
        queue_depth_peaks=peaks,
        n_failovers=n_failovers,
    )

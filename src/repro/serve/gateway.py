"""`SketchGateway` — sharded multi-node serving with failover.

The fourth :class:`~repro.serve.service.SketchService` implementation:
one logical estimation service fanned out over N backend HTTP front
doors (:class:`~repro.serve.http.SketchHTTPServer`), each reached
through the :class:`~repro.serve.client.RemoteSketchServer` SDK.  The
gateway speaks wire-protocol v1 on both sides — it is a
``RemoteSketchServer`` client downstream and (served through a
``SketchHTTPServer``) a v1 server upstream — so a client cannot tell a
gateway from a single node, and gateways front other gateways for
free.

Responsibilities, in fleet terms:

* **Parse + route at the gateway.**  Requests are parsed locally;
  routing uses the fleet-wide sketch map discovered from each
  backend's ``GET /v1/healthz`` (the additive ``tables`` field maps
  every sketch to the tables it covers), picking the narrowest
  covering sketch exactly like
  :meth:`~repro.demo.manager.SketchManager.route_name` — without
  holding any model.  Dispatch pins the request to the routed name so
  backends never re-route.
* **Sharding + replication.**  A sketch registered on one backend is a
  shard; the same sketch name on several backends makes those backends
  replicas.  Requests round-robin across a sketch's *live* replicas,
  so replicating a hot sketch scales its throughput with the replica
  count.
* **Health checking.**  A daemon thread probes every backend's
  ``/v1/healthz`` on a fixed interval, reviving backends that return
  and refreshing the routing table as sketches appear and disappear.
* **Failover with bounded backoff.**  Estimates are idempotent, so
  transport faults are retried against the next live replica:
  connection loss (:class:`~repro.errors.RemoteConnectionError` — the
  request never executed) fails over immediately; timeouts
  (:class:`~repro.errors.RemoteTimeoutError`) and HTTP 5xx retry after
  an exponentially growing, capped backoff.  HTTP 4xx and
  :class:`~repro.errors.ProtocolError` are never retried — the request
  (or the deployment) is wrong and will be wrong everywhere.
* **Structured degradation, zero hung futures.**  When no live replica
  holds the routed sketch — or every attempt is exhausted — the caller
  receives a *value*: an ``ok=False`` response with ``code="shed"``.
  Unroutable requests (no sketch in the whole fleet covers the tables)
  get ``code="route"``, malformed SQL ``code="parse"`` — the same
  closed code set as every other implementation.  Every future
  returned by ``submit``/``submit_many`` resolves.
* **Plan advisory pass-through.**  :meth:`plan` routes a whole
  join-order request to one live replica whose sketch covers the join
  graph *and* that advertises the ``plan`` capability in healthz; the
  answer is one downstream round trip with the same failover.  A fleet
  that cannot cover the join graph answers ``code="route"``, a fleet
  with no capable live replica ``code="shed"`` — structured values,
  never hangs, even when a backend dies mid-plan.
* **One fleet view.**  :meth:`stats_summary` merges each backend's
  engine snapshot into a fleet-wide aggregate next to the gateway's
  own routing/failover counters and the raw per-backend snapshots.

Typical use::

    with SketchGateway(["http://node1:8080", "http://node2:8080"]) as gw:
        response = gw.estimate("SELECT COUNT(*) FROM title t ...")
        print(gw.stats_summary()["fleet"])

or fronted by HTTP (wire v1 on both sides)::

    gateway = SketchGateway(backends)
    with SketchHTTPServer(service=gateway, port=8080) as door:
        door.join()

or from the CLI: ``repro gateway --backend http://node1:8080 ...``.
"""

from __future__ import annotations

import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Iterable, Sequence

from ..errors import (
    ProtocolError,
    ReproError,
    RemoteConnectionError,
    RemoteHTTPError,
    RemoteServerError,
    SketchError,
)
from ..metrics import Counter, Gauge, LatencySummary
from ..workload.query import Query
from .client import RemoteSketchServer
from .engine import CODE_PARSE, CODE_ROUTE, CODE_SHED, EstimateResponse

#: Upper bound on one failover backoff sleep (seconds); the growth is
#: exponential below it.
MAX_BACKOFF_S = 1.0


class _Backend:
    """One backend front door: its client, liveness, and sketch map."""

    __slots__ = (
        "url",
        "client",
        "alive",
        "sketches",
        "versions",
        "plan_ok",
        "probe_failures",
    )

    def __init__(self, url: str, client: RemoteSketchServer):
        self.url = url
        self.client = client
        self.alive = False
        #: sketch name -> tuple of covered tables (from /v1/healthz).
        self.sketches: dict[str, tuple[str, ...]] = {}
        #: sketch name -> {"token", "registry_version"} (from healthz;
        #: empty for backends that predate version surfacing).
        self.versions: dict[str, dict] = {}
        #: whether healthz advertises the plan advisory capability.
        self.plan_ok = False
        self.probe_failures = 0


class _NoLiveReplica(Exception):
    """Internal: dispatch exhausted every live replica of a sketch."""

    def __init__(self, sketch: str, attempts: int, cause: Exception | None):
        self.sketch = sketch
        self.attempts = attempts
        self.cause = cause
        detail = f": {cause}" if cause is not None else ""
        super().__init__(
            f"request shed: no live replica of sketch {sketch!r} "
            f"answered after {attempts} attempt(s){detail}"
        )


class SketchGateway:
    """One logical estimation service over N backend front doors.

    ``backends`` are base URLs (``http://host:port``).  ``timeout``
    bounds each downstream round trip; ``retries`` is the number of
    *additional* attempts after the first (each against the next live
    replica, with capped exponential backoff starting at
    ``backoff_s``); ``health_interval_s`` paces the background health
    probes (``None`` disables the thread — probes then only happen at
    construction and via :meth:`refresh`).  ``connection_workers``
    sizes the pool behind the non-blocking ``submit`` surface.
    ``client_factory`` (url -> client) exists for fault-injection
    tests.

    Thread-safe: any number of caller threads may submit concurrently.
    """

    def __init__(
        self,
        backends: Sequence[str],
        *,
        timeout: float = 30.0,
        retries: int = 2,
        backoff_s: float = 0.05,
        health_interval_s: float | None = 1.0,
        connection_workers: int = 8,
        client_factory=None,
    ):
        if not backends:
            raise SketchError("a gateway needs at least one backend URL")
        if retries < 0:
            raise SketchError(f"retries must be >= 0, got {retries}")
        if backoff_s < 0:
            raise SketchError(f"backoff_s must be >= 0, got {backoff_s}")
        if health_interval_s is not None and health_interval_s <= 0:
            raise SketchError(
                "health_interval_s must be positive (or None to disable), "
                f"got {health_interval_s}"
            )
        factory = client_factory or (
            lambda url: RemoteSketchServer(url, timeout=timeout)
        )
        seen = set()
        self._backends: list[_Backend] = []
        for url in backends:
            url = url.rstrip("/")
            if url in seen:
                raise SketchError(f"duplicate backend URL {url!r}")
            seen.add(url)
            self._backends.append(_Backend(url, factory(url)))
        self.retries = int(retries)
        self.backoff_s = float(backoff_s)

        self._state_lock = threading.Lock()
        #: sketch name -> backends currently advertising it (replicas).
        self._routes: dict[str, list[_Backend]] = {}
        #: sketch name -> covered tables (for narrowest-cover routing).
        self._tables: dict[str, tuple[str, ...]] = {}
        self._rr: dict[str, int] = {}  # round-robin cursors per sketch

        # Gateway-own telemetry (the backends keep their own engines').
        self.n_requests = Counter()
        self.n_answered = Counter()
        self.n_errors = Counter()
        self.n_retries = Counter()
        self.n_failovers = Counter()
        self.n_shed = Counter()
        self.inflight = Gauge()
        self.wire_latency = LatencySummary(window=8192)

        self._pool: ThreadPoolExecutor | None = None
        self._pool_lock = threading.Lock()
        self._workers = int(connection_workers)
        self._closed = False

        self.refresh()  # synchronous first probe: route immediately
        self._stop = threading.Event()
        self._health_thread: threading.Thread | None = None
        if health_interval_s is not None:
            self._health_thread = threading.Thread(
                target=self._health_loop,
                args=(float(health_interval_s),),
                name="sketch-gateway-health",
                daemon=True,
            )
            self._health_thread.start()

    # ------------------------------------------------------------------
    # fleet discovery
    # ------------------------------------------------------------------
    def refresh(self) -> None:
        """Probe every backend's ``/v1/healthz`` and rebuild the routes."""
        for backend in self._backends:
            self._probe(backend)
        self._rebuild_routes()

    def _probe(self, backend: _Backend) -> None:
        try:
            health = backend.client.healthz()
        except (RemoteServerError, ProtocolError):
            backend.alive = False
            backend.probe_failures += 1
            return
        names = health.get("sketches") or []
        tables = health.get("tables") or {}
        versions = health.get("versions") or {}
        backend.sketches = {
            str(name): tuple(tables.get(name, ())) for name in names
        }
        backend.versions = {
            str(name): dict(versions[name])
            for name in names
            if isinstance(versions.get(name), dict)
        }
        backend.plan_ok = bool(health.get("plan"))
        backend.alive = True
        backend.probe_failures = 0
        # Transport negotiation rides the probe for free: the payload in
        # hand is exactly what the client's negotiation would re-fetch,
        # so backends that advertise the binary transport get it picked
        # before the first estimate ever flows.  Best-effort — injected
        # fake clients may not negotiate at all.
        negotiate = getattr(backend.client, "negotiate_transport", None)
        if negotiate is not None:
            try:
                negotiate(health)
            except (RemoteServerError, ProtocolError):
                pass  # JSON keeps working; the next probe may retry

    def _rebuild_routes(self) -> None:
        routes: dict[str, list[_Backend]] = {}
        table_map: dict[str, tuple[str, ...]] = {}
        for backend in self._backends:
            if not backend.alive:
                continue
            for name, tables in backend.sketches.items():
                routes.setdefault(name, []).append(backend)
                if tables:  # an older backend may not advertise tables
                    table_map[name] = tables
        with self._state_lock:
            self._routes = routes
            self._tables = table_map

    def _health_loop(self, interval_s: float) -> None:
        while not self._stop.wait(interval_s):
            try:
                self.refresh()
            except Exception:
                # The probe loop must survive anything: a dead loop
                # means dead backends never revive.
                continue

    # ------------------------------------------------------------------
    # parse + route (gateway-side; no model state involved)
    # ------------------------------------------------------------------
    def describe_sketches(self) -> dict[str, tuple[str, ...]]:
        """Fleet-wide sketch -> covered-tables map (for healthz)."""
        with self._state_lock:
            merged = dict(self._tables)
            for name in self._routes:
                merged.setdefault(name, ())
            return merged

    def describe_versions(self) -> dict[str, dict]:
        """Fleet-wide version view per sketch (for healthz/operators).

        ``registry_version`` is the fleet-comparable coordinate (stamped
        by :class:`~repro.serve.registry.SketchRegistry` at save time);
        snapshot *tokens* are process-local counters and deliberately
        not aggregated.  Each sketch maps to::

            {"registry_version": <the one version every live replica
                                  runs, else None>,
             "consistent": <bool>,
             "replicas": {url: registry_version-or-None, ...}}

        so a fleet mid-rollout (or with a wedged backend after a death
        mid-swap) is visible as ``consistent: false``.
        """
        per_sketch: dict[str, dict] = {}
        for backend in self._backends:
            if not backend.alive:
                continue
            for name in backend.sketches:
                entry = per_sketch.setdefault(
                    name, {"replicas": {}}
                )
                info = backend.versions.get(name) or {}
                entry["replicas"][backend.url] = info.get("registry_version")
        for entry in per_sketch.values():
            seen = set(entry["replicas"].values())
            entry["consistent"] = len(seen) == 1
            entry["registry_version"] = seen.pop() if len(seen) == 1 else None
        return per_sketch

    def list_sketches(self) -> list[str]:
        """Sorted names of every sketch a live backend advertises."""
        with self._state_lock:
            return sorted(self._routes)

    def backend_status(self) -> dict[str, dict]:
        """url -> ``{"alive": bool, "sketches": [names]}`` per backend."""
        return {
            b.url: {"alive": b.alive, "sketches": sorted(b.sketches)}
            for b in self._backends
        }

    @property
    def pending(self) -> int:
        """Round trips currently in flight through this gateway."""
        return int(self.inflight.value)

    def _prepare(
        self, request: Query | str, pinned: str | None
    ) -> EstimateResponse:
        """Parse and route one request against the fleet map.

        Mirrors :func:`~repro.serve.engine.prepare_request`, with the
        manager's registry replaced by the discovered routing table.
        Returns an ok response with ``query``/``sketch`` resolved, or a
        structured parse/route failure.
        """
        response = EstimateResponse(
            request=request, query=None, sketch=pinned, estimate=None
        )
        try:
            if isinstance(request, str):
                from ..db.sql import parse_sql

                response.query = parse_sql(request)
            else:
                response.query = request
        except ReproError as exc:
            response.error = str(exc)
            response.code = CODE_PARSE
            return response
        with self._state_lock:
            if pinned is not None:
                if pinned not in self._routes:
                    known = ", ".join(sorted(self._routes)) or "(none)"
                    response.error = (
                        f"no sketch named {pinned!r} on any live backend; "
                        f"have: {known}"
                    )
                    response.code = CODE_ROUTE
                return response
            needed = {t.table for t in response.query.tables}
            candidates = [
                (len(tables), name)
                for name, tables in self._tables.items()
                if needed <= set(tables) and name in self._routes
            ]
        if not candidates:
            response.error = (
                f"no registered sketch covers tables {sorted(needed)} "
                "on any live backend"
            )
            response.code = CODE_ROUTE
            return response
        _, response.sketch = min(candidates)
        return response

    # ------------------------------------------------------------------
    # dispatch with failover
    # ------------------------------------------------------------------
    def _pick_replica(
        self, sketch: str, tried: set[int], capable=None
    ) -> _Backend | None:
        """Next live replica of ``sketch``, round-robin; prefers
        backends not yet tried for this request (timeout retries may
        revisit one when nothing else is live).  ``capable`` narrows
        the candidates further (e.g. to plan-capable backends)."""
        with self._state_lock:
            replicas = [
                b
                for b in self._routes.get(sketch, ())
                if b.alive and (capable is None or capable(b))
            ]
            if not replicas:
                return None
            fresh = [b for b in replicas if id(b) not in tried] or replicas
            cursor = self._rr.get(sketch, -1) + 1
            self._rr[sketch] = cursor
            return fresh[cursor % len(fresh)]

    def _call_with_failover(self, sketch: str, call, capable=None):
        """Run ``call(backend)`` against live replicas until one answers.

        Retry policy by fault class (see :mod:`repro.errors`):
        connection loss fails over immediately (the request never
        executed); timeouts and HTTP 5xx back off then retry (estimates
        are idempotent); HTTP 4xx and protocol errors propagate — they
        are wrong everywhere.  Raises :class:`_NoLiveReplica` when the
        attempt budget is exhausted or no replica is live (or none
        passes ``capable``).
        """
        attempts = self.retries + 1
        delay = self.backoff_s
        tried: set[int] = set()
        last: Exception | None = None
        made = 0
        for attempt in range(attempts):
            backend = self._pick_replica(sketch, tried, capable)
            if backend is None:
                break
            tried.add(id(backend))
            made += 1
            if attempt > 0:
                self.n_retries.inc()
            try:
                return call(backend)
            except ProtocolError:
                raise
            except RemoteHTTPError as exc:
                if exc.status < 500:
                    raise
                last = exc
                backend.alive = False
                self.n_failovers.inc()
            except RemoteConnectionError as exc:
                last = exc
                backend.alive = False
                self.n_failovers.inc()
                continue  # never executed: no backoff before the replica
            except RemoteServerError as exc:  # timeout or unclassified
                last = exc
                backend.alive = False
                self.n_failovers.inc()
            if attempt + 1 < attempts and delay > 0:
                time.sleep(min(delay, MAX_BACKOFF_S))
                delay *= 2
        raise _NoLiveReplica(sketch, made, last)

    def _shed(self, response: EstimateResponse, exc: _NoLiveReplica) -> EstimateResponse:
        response.error = str(exc)
        response.code = CODE_SHED
        return response

    def _finish(self, response: EstimateResponse) -> EstimateResponse:
        if response.ok:
            self.n_answered.inc()
        else:
            self.n_errors.inc()
            if response.code == CODE_SHED:
                self.n_shed.inc()
        return response

    # ------------------------------------------------------------------
    # the SketchService surface
    # ------------------------------------------------------------------
    def estimate(
        self, request: Query | str, sketch: str | None = None
    ) -> EstimateResponse:
        """One request through the fleet: route, dispatch, fail over."""
        if self._closed:
            raise RemoteServerError("gateway is closed")
        self.n_requests.inc()
        prepared = self._prepare(request, sketch)
        if not prepared.ok:
            return self._finish(prepared)
        t0 = time.perf_counter()
        self.inflight.adjust(1)
        try:
            response = self._call_with_failover(
                prepared.sketch,
                lambda b: b.client.estimate(request, prepared.sketch),
            )
        except _NoLiveReplica as exc:
            return self._finish(self._shed(prepared, exc))
        finally:
            self.inflight.adjust(-1)
            self.wire_latency.observe(time.perf_counter() - t0)
        return self._finish(response)

    def estimate_many(
        self, requests: Sequence[Query | str], sketch: str | None = None
    ) -> list[EstimateResponse]:
        """A whole batch, partitioned per routed sketch: one downstream
        ``estimate_batch`` round trip per sketch group, results in
        submission order."""
        futures = self.submit_many(requests, sketch)
        return [future.result() for future in futures]

    def submit(self, request: Query | str, sketch: str | None = None):
        """Non-blocking enqueue; the future always resolves (structured
        responses for parse/route/shed outcomes, an exception only for
        protocol-level faults that would be wrong on every replica)."""
        return self._ensure_pool().submit(self.estimate, request, sketch)

    def submit_many(
        self, requests: Sequence[Query | str], sketch: str | None = None
    ):
        """Amortized fan-out: requests are routed locally, grouped by
        sketch, and each group travels as one wire round trip to a live
        replica (failing over as a group); one future per request, in
        submission order, every one of which resolves."""
        if self._closed:
            raise RemoteServerError("gateway is closed")
        requests = list(requests)
        futures: list[Future[EstimateResponse]] = [Future() for _ in requests]
        for future in futures:
            future.set_running_or_notify_cancel()
        if not requests:
            return futures
        groups: dict[str, list[tuple[int, EstimateResponse]]] = {}
        for i, request in enumerate(requests):
            self.n_requests.inc()
            prepared = self._prepare(request, sketch)
            if not prepared.ok:
                futures[i].set_result(self._finish(prepared))
            else:
                groups.setdefault(prepared.sketch, []).append((i, prepared))
        pool = self._ensure_pool()
        for name, members in groups.items():
            pool.submit(self._run_group, name, members, requests, futures)
        return futures

    def _run_group(
        self,
        name: str,
        members: list[tuple[int, EstimateResponse]],
        requests: list,
        futures: list,
    ) -> None:
        """One sketch group's round trip (runs on the pool)."""
        indices = [i for i, _prepared in members]
        group = [requests[i] for i in indices]
        t0 = time.perf_counter()
        self.inflight.adjust(1)
        try:
            responses = self._call_with_failover(
                name, lambda b: b.client.estimate_many(group, name)
            )
        except _NoLiveReplica as exc:
            for i, prepared in members:
                futures[i].set_result(self._finish(self._shed(prepared, exc)))
            return
        except BaseException as exc:  # protocol faults: resolve, never hang
            for i in indices:
                self.n_errors.inc()
                futures[i].set_exception(exc)
            return
        finally:
            self.inflight.adjust(-1)
            self.wire_latency.observe(time.perf_counter() - t0)
        for i, response in zip(indices, responses):
            futures[i].set_result(self._finish(response))

    def serve(
        self, requests: Iterable[Query | str], sketch: str | None = None
    ) -> list[EstimateResponse]:
        """Submit a stream and block for all responses (submission order)."""
        return self.estimate_many(list(requests), sketch)

    def plan(self, request: Query | str, sketch: str | None = None):
        """Join-order advice through the fleet, as one downstream call.

        The gateway parses and routes locally — the whole join graph
        must be covered by **one** sketch on a live, plan-capable
        backend (feature-detected via healthz's ``plan`` field), since
        the subplan batch runs against a single engine.  The plan
        request then travels as one wire round trip with the usual
        failover.  Every failure path resolves to a structured
        :class:`~repro.serve.plan.PlanResponse`: unroutable join graphs
        ``code="route"``, malformed SQL ``code="parse"``, no capable
        live replica (or budget exhausted, e.g. a backend dying
        mid-plan) ``code="shed"``.
        """
        from .plan import plan_failure

        if self._closed:
            raise RemoteServerError("gateway is closed")
        self.n_requests.inc()
        prepared = self._prepare(request, sketch)
        if not prepared.ok:
            self.n_errors.inc()
            return plan_failure(
                request, prepared.error, prepared.code, query=prepared.query
            )
        t0 = time.perf_counter()
        self.inflight.adjust(1)
        try:
            response = self._call_with_failover(
                prepared.sketch,
                lambda b: b.client.plan(request, prepared.sketch),
                capable=lambda b: b.plan_ok,
            )
        except _NoLiveReplica as exc:
            self.n_errors.inc()
            self.n_shed.inc()
            return plan_failure(
                request,
                str(exc),
                CODE_SHED,
                query=prepared.query,
                sketch=prepared.sketch,
            )
        finally:
            self.inflight.adjust(-1)
            self.wire_latency.observe(time.perf_counter() - t0)
        if response.ok:
            self.n_answered.inc()
        else:
            self.n_errors.inc()
            if response.code == CODE_SHED:
                self.n_shed.inc()
        return response

    def healthz(self) -> dict:
        """The gateway's own liveness payload (same shape a fronting
        :class:`~repro.serve.http.SketchHTTPServer` serves)."""
        from .http import healthz_payload

        return healthz_payload(self)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    #: Engine-snapshot counters summed into the fleet view.
    _FLEET_SUMS = (
        "requests",
        "answered",
        "errors",
        "shed",
        "deadline_missed",
        "cache_hits",
        "fast_cache_hits",
        "deduped",
        "forward_batches",
        "executor_fallbacks",
    )

    def stats_summary(self) -> dict:
        """Gateway counters + per-backend snapshots + one fleet view.

        ``gateway`` is this process's routing/failover accounting;
        ``backends`` maps each URL to its engine's ``stats_summary()``
        snapshot (``None`` when the backend is down); ``fleet`` sums
        the engine counters across live backends — the whole deployment
        as if it were one server.
        """
        per_backend: dict[str, dict | None] = {}
        for backend in self._backends:
            summary = None
            if backend.alive:
                try:
                    summary = backend.client.stats_summary()
                except (RemoteServerError, ProtocolError):
                    backend.alive = False
            per_backend[backend.url] = summary
        live = [s for s in per_backend.values() if s is not None]
        fleet: dict = {key: 0 for key in self._FLEET_SUMS}
        fleet["flushes"] = {}
        fleet["sketch_requests"] = {}
        fleet["backends_live"] = len(live)
        fleet["backends_total"] = len(self._backends)
        for summary in live:
            for key in self._FLEET_SUMS:
                value = summary.get(key)
                if isinstance(value, (int, float)):
                    fleet[key] += value
            for trigger, count in (summary.get("flushes") or {}).items():
                fleet["flushes"][trigger] = (
                    fleet["flushes"].get(trigger, 0) + count
                )
            for name, count in (summary.get("sketch_requests") or {}).items():
                fleet["sketch_requests"][name] = (
                    fleet["sketch_requests"].get(name, 0) + count
                )
        with self._state_lock:
            sketches = {
                name: [b.url for b in replicas]
                for name, replicas in self._routes.items()
            }
        return {
            "gateway": {
                "requests": self.n_requests.value,
                "answered": self.n_answered.value,
                "errors": self.n_errors.value,
                "shed": self.n_shed.value,
                "retries": self.n_retries.value,
                "failovers": self.n_failovers.value,
                "inflight": int(self.inflight.value),
                "wire_latency": self.wire_latency.summary(),
                "sketches": sketches,
                "versions": self.describe_versions(),
                "transports": {
                    b.url: getattr(b.client, "active_transport", None)
                    for b in self._backends
                },
            },
            "backends": per_backend,
            "fleet": fleet,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._pool_lock:
            if self._closed:
                raise RemoteServerError("gateway is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._workers,
                    thread_name_prefix="sketch-gateway",
                )
            return self._pool

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Stop health checks, finish in-flight round trips, release
        the backend clients (idempotent; backends are not affected)."""
        with self._pool_lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
        self._stop.set()
        if self._health_thread is not None:
            self._health_thread.join(5.0)
        if pool is not None:
            pool.shutdown(wait=True)
        for backend in self._backends:
            backend.client.close()

    def __enter__(self) -> "SketchGateway":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        live = sum(b.alive for b in self._backends)
        state = "closed" if self._closed else "open"
        return (
            f"SketchGateway(backends={len(self._backends)}, live={live}, "
            f"{state})"
        )


__all__ = ["MAX_BACKOFF_S", "SketchGateway"]

"""Plan advisory: join-order optimization as a service.

The paper's stated use of Deep Sketches is that the estimates "can
directly be leveraged by existing, sophisticated join enumeration
algorithms and cost models" (Section 1).  :mod:`repro.optimizer` is
that consumer in-process; this module closes the serving loop — one
SQL query in, one chosen join order out, with every subplan
cardinality served by a :class:`~repro.serve.service.SketchService`:

1. **Enumerate** every connected subplan of the query's join graph
   (:func:`~repro.optimizer.enumerate.connected_subsets` — the exact
   subsets the DP will probe, plus the singletons the degraded
   fallback needs).
2. **Batch** all subplan estimates through one ``submit_many`` call,
   so the whole plan costs exactly ONE ``estimate_batch`` round trip
   (cross-sketch dedup, the feature cache, and server-side
   micro-batching do the rest).
3. **Inject** the answers into
   :func:`~repro.optimizer.enumerate.dp_optimal_plan` under the C_out
   model, clamping each estimate at 1.0 exactly like
   :class:`~repro.optimizer.cost.CardinalityCache` — so the served
   plan is *identical* to the in-process
   :class:`~repro.optimizer.PlanOptimizer` plan.
4. **Answer** with a structured :class:`PlanResponse`: the chosen join
   order, the per-subplan estimates (with response codes), the
   estimated C_out, and a timing split (estimation vs enumeration).

Failure semantics mirror the estimate path — a response is a value,
never an exception:

* malformed SQL -> ``code="parse"``;
* a join graph the enumerator cannot plan (disconnected, or wider
  than :data:`~repro.optimizer.enumerate.MAX_DP_RELATIONS`) ->
  ``code="plan"`` (:data:`CODE_PLAN`, the one addition plan envelopes
  make to the engine's closed code set — see
  :data:`PLAN_RESPONSE_CODES`);
* no sketch covers the join graph -> ``code="route"``;
* **per-subplan failures degrade, they do not fail the plan**: a
  subplan that sheds, misses vocabulary, or expires falls back to the
  independence-assumption estimate (the product of its member tables'
  single-table estimates — the cross-product bound) with
  ``degraded=True`` and the original code preserved on its
  :class:`SubplanEstimate`.  Degraded estimates are real numbers, so
  the DP still returns a complete plan; callers that must not act on
  degraded advice check ``response.degraded``.

Transport faults (connection loss to a remote service) raise through
the futures exactly as they do for ``submit_many`` — the gateway and
SDK layers map those onto their typed taxonomy.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field

from ..errors import QueryError, ReproError
from ..workload.query import Query
from ..optimizer.enumerate import connected_subsets, dp_optimal_plan
from ..optimizer.plans import PlanNode, sub_query
from .engine import CODE_PARSE, CODE_ROUTE, RESPONSE_CODES

#: ``PlanResponse.code`` for a query the join enumerator cannot plan:
#: a disconnected join graph (cross products) or more relations than
#: the DP width guard allows.  Distinct from ``"parse"`` (the SQL is
#: valid) and ``"route"`` (a covering sketch may well exist).
CODE_PLAN = "plan"

#: Every code a :class:`PlanResponse` can carry: the engine's closed
#: set plus :data:`CODE_PLAN`.  Appending is additive for the wire
#: encodings; reordering is a wire break.
PLAN_RESPONSE_CODES = RESPONSE_CODES + (CODE_PLAN,)


@dataclass
class SubplanEstimate:
    """One connected subplan's served cardinality.

    ``aliases`` is the sorted alias tuple of the subset; ``estimate``
    is the injected cardinality (already clamped at 1.0, the
    :class:`~repro.optimizer.cost.CardinalityCache` discipline).  A
    ``degraded`` entry fell back to the independence-assumption
    estimate; ``code``/``error`` then preserve the underlying
    failure (one of :data:`~repro.serve.engine.RESPONSE_CODES`).
    """

    aliases: tuple[str, ...]
    estimate: float
    cached: bool = False
    degraded: bool = False
    code: str | None = None
    error: str | None = None

    @property
    def ok(self) -> bool:
        return not self.degraded


@dataclass
class PlanResponse:
    """Outcome of one plan advisory request.

    Exactly one of ``plan`` / ``error`` is set.  ``subplans`` lists
    every connected subset in enumeration order (singletons first, the
    full query last); ``estimated_cost`` is the chosen plan's C_out
    under the served estimates.  ``estimate_ms`` is the one batched
    estimation round trip; ``enumerate_ms`` is subset enumeration plus
    the DP — the split quantifies what plan advice costs beyond plain
    estimation.
    """

    request: Query | str
    query: Query | None
    sketch: str | None
    plan: PlanNode | None
    estimated_cost: float | None
    subplans: tuple[SubplanEstimate, ...] = field(default_factory=tuple)
    error: str | None = None
    code: str | None = None
    estimate_ms: float | None = None
    enumerate_ms: float | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def degraded(self) -> bool:
        """Did any subplan fall back to an independence estimate?"""
        return any(s.degraded for s in self.subplans)

    @property
    def join_order(self) -> str | None:
        """The chosen plan as its parenthesized join string."""
        return None if self.plan is None else str(self.plan)


class _InjectedCards:
    """A :class:`~repro.optimizer.cost.CardinalityCache` stand-in over
    pre-served estimates — the cardinality-injection side of the DP."""

    __slots__ = ("_cards",)

    def __init__(self, cards: dict[frozenset[str], float]):
        self._cards = cards

    def cardinality(self, aliases: frozenset[str]) -> float:
        return self._cards[aliases]

    @property
    def probes(self) -> int:
        return len(self._cards)


def plan_failure(
    request: Query | str,
    error: str,
    code: str,
    *,
    query: Query | None = None,
    sketch: str | None = None,
) -> PlanResponse:
    """A structured plan failure (every field a wire envelope needs)."""
    return PlanResponse(
        request=request,
        query=query,
        sketch=sketch,
        plan=None,
        estimated_cost=None,
        error=error,
        code=code,
    )


def plan_query(
    service,
    request: Query | str,
    sketch: str | None = None,
    *,
    flush=None,
) -> PlanResponse:
    """Advise a join order for ``request``, estimates served by ``service``.

    ``service`` is any :class:`~repro.serve.service.SketchService`;
    ``sketch`` pins every subplan estimate to a named sketch (default:
    each subplan routes to its narrowest cover).  ``flush`` is the
    sync facade's hook: a caller-driven service (no background loop)
    passes its ``flush`` so the one batch actually resolves.

    All subplan estimates travel as **one** ``submit_many`` batch —
    one wire round trip against a remote service — before the DP runs
    on the injected answers.  See the module docs for the failure and
    degradation semantics.
    """
    # -- parse ---------------------------------------------------------
    if isinstance(request, str):
        try:
            from ..db.sql import parse_sql

            query = parse_sql(request)
        except ReproError as exc:
            return plan_failure(request, str(exc), CODE_PARSE)
    else:
        query = request

    # -- enumerate the connected subplans (pre-round-trip guards) ------
    t0 = time.perf_counter()
    try:
        subsets = connected_subsets(query)
    except QueryError as exc:
        return plan_failure(request, str(exc), CODE_PLAN, query=query)
    enumerate_s = time.perf_counter() - t0

    # -- one batched estimation round trip -----------------------------
    t0 = time.perf_counter()
    futures = service.submit_many(
        [sub_query(query, subset) for subset in subsets], sketch
    )
    if flush is not None:
        flush()
    responses = [future.result() for future in futures]
    estimate_s = time.perf_counter() - t0

    # Any route failure fails the whole plan: a sketch that covers the
    # full join graph covers every subplan, so an unroutable subset
    # means no backend can advise this plan at all.
    for response in responses:
        if response.code == CODE_ROUTE:
            return plan_failure(
                request, response.error, CODE_ROUTE, query=query, sketch=sketch
            )

    # -- inject, degrading failed subplans -----------------------------
    cards: dict[frozenset[str], float] = {}
    subplans: list[SubplanEstimate] = []
    for subset, response in zip(subsets, responses):
        aliases = tuple(sorted(subset))
        if response.ok:
            # The CardinalityCache clamp, verbatim: identical inputs to
            # the DP mean the served plan equals the in-process one.
            estimate = max(float(response.estimate), 1.0)
            subplans.append(
                SubplanEstimate(
                    aliases=aliases, estimate=estimate, cached=response.cached
                )
            )
        else:
            # Independence-assumption fallback: the cross-product bound
            # over the member tables' single-table estimates (1.0 for a
            # member whose own estimate also failed — subsets enumerate
            # smallest-first, so singletons are already in `cards`).
            fallback = 1.0
            for alias in subset:
                fallback *= cards.get(frozenset((alias,)), 1.0)
            estimate = max(fallback, 1.0)
            subplans.append(
                SubplanEstimate(
                    aliases=aliases,
                    estimate=estimate,
                    degraded=True,
                    code=response.code,
                    error=response.error,
                )
            )
        cards[subset] = estimate

    # -- the DP over injected cardinalities ----------------------------
    t0 = time.perf_counter()
    try:
        plan, cost = dp_optimal_plan(query, _InjectedCards(cards))
    except QueryError as exc:  # pragma: no cover - pre-checked above
        return plan_failure(request, str(exc), CODE_PLAN, query=query)
    enumerate_s += time.perf_counter() - t0

    full = responses[-1]  # subsets enumerate the full query last
    return PlanResponse(
        request=request,
        query=query,
        sketch=full.sketch if full.sketch is not None else sketch,
        plan=plan,
        estimated_cost=cost,
        subplans=tuple(subplans),
        estimate_ms=estimate_s * 1000.0,
        enumerate_ms=enumerate_s * 1000.0,
    )


__all__ = [
    "CODE_PLAN",
    "PLAN_RESPONSE_CODES",
    "PlanResponse",
    "SubplanEstimate",
    "plan_failure",
    "plan_query",
]

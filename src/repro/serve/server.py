"""The synchronous batched estimation server.

Request lifecycle::

    submit(sql | Query [, sketch])   # enqueue, cheap
        -> flush()                   # parse, route, micro-batch, answer
            -> list[EstimateResponse]  # in submission order

``flush`` is where the throughput comes from: requests are grouped by
the sketch that will answer them, each group is split into micro-batches
of at most ``ServeConfig.max_batch_size`` queries, and every micro-batch
costs one MSCN forward pass (cache hits and duplicate queries never
reach the model at all).  Failures are isolated per request — a
malformed SQL string or an uncovered table subset yields an error
response instead of poisoning its batch.

This server only flushes when a caller asks it to (``flush``/``serve``),
which is the right shape for offline streams — a file of queries, a
benchmark, a bulk re-estimation job.  For live concurrent traffic,
where no single caller sees the whole stream and tail latency must be
bounded, use :class:`repro.serve.async_server.AsyncSketchServer`, which
runs the same prepare/answer pipeline (the module-level
:func:`prepare_request` / :func:`answer_chunk` helpers below) from a
background flush loop.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from ..errors import ReproError, SketchError
from ..workload.query import Query
from ..demo.manager import SketchManager


@dataclass(frozen=True)
class ServeConfig:
    """Serving knobs.

    ``max_batch_size`` bounds the per-forward micro-batch (memory for
    the padded feature tensors scales with batch size x the largest set
    in the batch); ``use_cache`` toggles the per-sketch LRU result
    cache.
    """

    max_batch_size: int = 256
    use_cache: bool = True

    def __post_init__(self):
        if self.max_batch_size <= 0:
            raise SketchError(
                f"max_batch_size must be positive, got {self.max_batch_size}"
            )


@dataclass
class EstimateResponse:
    """Outcome of one served request (exactly one of estimate/error set)."""

    request: Query | str
    query: Query | None
    sketch: str | None
    estimate: float | None
    cached: bool = False
    error: str | None = None

    @property
    def ok(self) -> bool:
        return self.error is None


@dataclass
class ServerStats:
    """Cumulative counters over a server's lifetime."""

    n_requests: int = 0
    n_answered: int = 0
    n_errors: int = 0
    n_forward_batches: int = 0
    n_cache_hits: int = 0
    sketch_requests: dict = field(default_factory=dict)  # name -> count


def prepare_request(
    manager: SketchManager, request: Query | str, pinned: str | None
) -> EstimateResponse:
    """Parse and route one request (no model work yet).

    Returns a response with ``query`` and ``sketch`` resolved, or with
    ``error`` set when the SQL is malformed, no registered sketch covers
    the tables, or the pinned sketch name is unknown.
    """
    response = EstimateResponse(
        request=request, query=None, sketch=pinned, estimate=None
    )
    try:
        if isinstance(request, str):
            from ..db.sql import parse_sql

            response.query = parse_sql(request)
        else:
            response.query = request
        if pinned is None:
            response.sketch = manager.route_name(response.query)
        else:
            manager.get_sketch(pinned)  # raise early if unknown
    except ReproError as exc:
        response.error = str(exc)
    return response


def answer_chunk(
    sketch,
    chunk: list[EstimateResponse],
    use_cache: bool,
    stats: ServerStats,
    feature_cache=None,
) -> None:
    """Answer one micro-batch in place: a single ``estimate_many`` call.

    The model work behind that call runs on the sketch's compiled
    :class:`~repro.nn.inference.InferenceSession` — the autograd-free
    forward with pooled buffers — so a serving flush never touches the
    training graph (see ``docs/performance.md``).  On a batch-level
    failure (a query can pass routing yet fail featurization — unknown
    column/operator for this sketch's vocabulary) the chunk is retried
    one request at a time so only the offending requests fail.  Shared
    by the synchronous and async servers; ``stats`` counters are
    updated for the whole chunk.
    """
    queries = [r.query for r in chunk]
    if use_cache:
        for r in chunk:
            r.cached = r.query in sketch.cache
    try:
        estimates = sketch.estimate_many(
            queries, use_cache=use_cache, feature_cache=feature_cache
        )
    except ReproError:
        for r in chunk:
            # Re-check at retry time: an earlier retry in this loop
            # may have cached this query (duplicates in the chunk).
            r.cached = use_cache and r.query in sketch.cache
            try:
                r.estimate = sketch.estimate(r.query, use_cache=use_cache)
                if r.cached:
                    stats.n_cache_hits += 1
                else:
                    stats.n_forward_batches += 1
            except ReproError as exc:
                r.cached = False
                r.error = str(exc)
        return
    if any(not r.cached for r in chunk):
        stats.n_forward_batches += 1
    stats.n_cache_hits += sum(r.cached for r in chunk)
    for r, estimate in zip(chunk, estimates):
        r.estimate = float(estimate)


class SketchServer:
    """Serves cardinality estimates from a :class:`SketchManager`.

    The server holds no model state of its own; it is a batching and
    routing layer over the manager's registered sketches, so sketches
    can be registered, dropped, or rebuilt between flushes without
    restarting the server.  ``feature_cache`` (a
    :class:`repro.serve.feature_cache.FeatureCache`) is optional and may
    be shared with other servers; it persists template structure rows
    across flushes.
    """

    def __init__(
        self,
        manager: SketchManager,
        config: ServeConfig | None = None,
        feature_cache=None,
    ):
        self.manager = manager
        self.config = config or ServeConfig()
        self.stats = ServerStats()
        self.feature_cache = feature_cache
        self._queue: list[tuple[Query | str, str | None]] = []

    # ------------------------------------------------------------------
    # request intake
    # ------------------------------------------------------------------
    def submit(self, request: Query | str, sketch: str | None = None) -> int:
        """Enqueue one request; returns its position in the next flush.

        ``sketch`` pins the request to a named sketch; otherwise the
        request is routed to the narrowest registered sketch covering
        its tables at flush time.
        """
        self._queue.append((request, sketch))
        self.stats.n_requests += 1
        return len(self._queue) - 1

    @property
    def pending(self) -> int:
        return len(self._queue)

    def serve(
        self, requests: Iterable[Query | str], sketch: str | None = None
    ) -> list[EstimateResponse]:
        """Submit a whole stream and flush it: the one-call batch API."""
        for request in requests:
            self.submit(request, sketch=sketch)
        return self.flush()

    # ------------------------------------------------------------------
    # the batched answer path
    # ------------------------------------------------------------------
    def flush(self) -> list[EstimateResponse]:
        """Answer every pending request; responses in submission order."""
        queue, self._queue = self._queue, []
        responses: list[EstimateResponse] = []
        groups: dict[str, list[int]] = {}  # sketch name -> response indices

        for request, pinned in queue:
            response = self._prepare(request, pinned)
            responses.append(response)
            if response.ok:
                groups.setdefault(response.sketch, []).append(len(responses) - 1)

        for name, indices in groups.items():
            sketch = self.manager.get_sketch(name)
            self.stats.sketch_requests[name] = (
                self.stats.sketch_requests.get(name, 0) + len(indices)
            )
            for start in range(0, len(indices), self.config.max_batch_size):
                chunk = indices[start : start + self.config.max_batch_size]
                self._answer_chunk(sketch, [responses[i] for i in chunk])

        for response in responses:
            if response.ok:
                self.stats.n_answered += 1
            else:
                self.stats.n_errors += 1
        return responses

    def _prepare(
        self, request: Query | str, pinned: str | None
    ) -> EstimateResponse:
        return prepare_request(self.manager, request, pinned)

    def _answer_chunk(self, sketch, chunk: list[EstimateResponse]) -> None:
        answer_chunk(
            sketch,
            chunk,
            use_cache=self.config.use_cache,
            stats=self.stats,
            feature_cache=self.feature_cache,
        )

"""The synchronous serving facade over the estimation engine.

One of the three :class:`~repro.serve.service.SketchService`
implementations (with :class:`~repro.serve.async_server.AsyncSketchServer`
and :class:`~repro.serve.client.RemoteSketchServer`): ``submit`` returns
a future, ``estimate`` blocks for one response, ``serve`` handles a
whole stream — swapping this facade for a remote client is a one-line
change.  Request lifecycle::

    submit(sql | Query [, sketch])   # enqueue, cheap -> Future
        -> flush()                   # one caller-driven engine flush
            -> list[EstimateResponse]  # in submission order

Since the engine refactor, :class:`SketchServer` holds no lifecycle
logic of its own: parsing, routing, admission control, micro-batching,
caching, and execution all live in
:class:`~repro.serve.engine.EstimationEngine`, which this facade drives
with caller-initiated flushes (no background thread, no submit-time
coalescing — every request gets its own response object, answered when
*you* flush).  That shape fits offline streams — a file of queries, a
benchmark, a bulk re-estimation job.  For live concurrent traffic,
where no single caller sees the whole stream and tail latency must be
bounded, use :class:`repro.serve.async_server.AsyncSketchServer`: the
same engine, driven by a background flush loop.

The engine's executor applies here too: with
``ServeConfig(executor="process")`` a single ``flush()`` fans its
micro-batches out across worker processes.  Call :meth:`close` (or use
the server as a context manager) when using a pooled executor so
worker threads/processes are released; the default inline executor
needs no cleanup.

Numerical behavior: with the default inline executor the answers are
bit-identical to the pre-engine ``SketchServer`` (same
``estimate_many`` micro-batches, same cache interaction); thread and
process executors agree within the few-ULP BLAS rounding documented in
:mod:`repro.serve.bench`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from ..workload.query import Query
from ..demo.manager import SketchManager
from .engine import (
    EstimateResponse,
    EstimationEngine,
    ServeConfig,
    ServerStats,
    answer_chunk,
    prepare_request,
)


class SketchServer:
    """Serves cardinality estimates from a :class:`SketchManager`.

    The server holds no model state of its own; it is a facade over an
    :class:`~repro.serve.engine.EstimationEngine`.  Requests are parsed
    at submit time and routed **at the latest possible moment**: a
    request with a covering sketch buffers under it immediately, one
    without defers and is re-routed at flush time (route-at-flush) —
    so sketches may be dropped or rebuilt between submit and flush
    (already-routed requests to a dropped sketch resolve as
    per-request errors), and a sketch registered mid-stream serves
    every not-yet-flushed submit, not just subsequent ones.
    ``feature_cache`` (a
    :class:`repro.serve.feature_cache.FeatureCache`) is optional and may
    be shared with other servers; it persists template structure rows
    across flushes.  Not thread-safe: concurrent callers must serialize
    around it (or use the async facade, which is).

    Telemetry: :attr:`stats` is the raw counter block
    (:class:`~repro.serve.engine.ServerStats`); :meth:`stats_summary`
    is the engine's one-call snapshot (queue-depth gauge, shed /
    deadline counters, flush-latency percentiles), identical in shape
    to the async facade's.
    """

    def __init__(
        self,
        manager: SketchManager,
        config: ServeConfig | None = None,
        feature_cache=None,
    ):
        self.engine = EstimationEngine(
            manager, config or ServeConfig(), feature_cache
        )
        self._futures: list = []

    # -- engine views ---------------------------------------------------
    @property
    def manager(self) -> SketchManager:
        return self.engine.manager

    @property
    def config(self) -> ServeConfig:
        return self.engine.config

    @property
    def stats(self) -> ServerStats:
        return self.engine.counters

    @property
    def feature_cache(self):
        return self.engine.feature_cache

    def stats_summary(self) -> dict:
        """The engine's one-call telemetry snapshot (both facades share
        this shape; see :meth:`EstimationEngine.stats`)."""
        return self.engine.stats()

    # ------------------------------------------------------------------
    # request intake
    # ------------------------------------------------------------------
    def submit(self, request: Query | str, sketch: str | None = None):
        """Enqueue one request; returns its ``Future[EstimateResponse]``.

        The future resolves at the next caller-driven :meth:`flush`
        (this facade has no background loop).  ``sketch`` pins the
        request to a named sketch; otherwise the request is routed to
        the narrowest registered sketch covering its tables (decided at
        flush time when nothing covers it yet — route-at-flush).
        Parse failures — and admission-control sheds, when
        ``max_queue_depth`` is set — resolve the future immediately
        with a structured error response; nothing raises through it.
        """
        future = self.engine.submit(request, sketch, coalesce=False)
        self._futures.append(future)
        return future

    def submit_many(
        self, requests: Sequence[Query | str], sketch: str | None = None
    ):
        """Amortized intake: enqueue a whole batch under one engine lock.

        Semantically identical to calling :meth:`submit` per request;
        returns the futures in submission order (resolved by the next
        :meth:`flush`).
        """
        futures = self.engine.submit_many(list(requests), sketch, coalesce=False)
        self._futures.extend(futures)
        return futures

    def estimate(
        self, request: Query | str, sketch: str | None = None
    ) -> EstimateResponse:
        """Blocking one-shot convenience: submit, flush, return.

        Note the facade semantics: the flush answers *everything*
        pending on this server, exactly as an explicit :meth:`flush`
        would (previously submitted futures resolve too).
        """
        future = self.submit(request, sketch)
        self.flush()
        return future.result()

    @property
    def pending(self) -> int:
        return len(self._futures)

    def plan(self, request: Query | str, sketch: str | None = None):
        """Join-order advice: one batched estimation round for every
        connected subplan, injected into the DP enumerator.

        Returns a structured
        :class:`~repro.serve.plan.PlanResponse` (never an exception for
        request-level failures).  Facade semantics as with
        :meth:`estimate`: the internal flush answers *everything*
        pending on this server, not just the plan's subplan batch.
        """
        from .plan import plan_query

        return plan_query(self, request, sketch, flush=self.flush)

    def serve(
        self, requests: Iterable[Query | str], sketch: str | None = None
    ) -> list[EstimateResponse]:
        """Submit a whole stream and flush it: the one-call batch API."""
        self.submit_many(list(requests), sketch)
        return self.flush()

    # ------------------------------------------------------------------
    # the batched answer path
    # ------------------------------------------------------------------
    def flush(self) -> list[EstimateResponse]:
        """Answer every pending request; responses in submission order.

        One engine flush: per-sketch micro-batches of at most
        ``max_batch_size``, all dispatched to the configured executor as
        a single round (so thread/process executors overlap them).
        """
        futures, self._futures = self._futures, []
        self.engine.flush_pending()
        return [future.result() for future in futures]

    # ------------------------------------------------------------------
    # lifecycle (pooled executors want an explicit release)
    # ------------------------------------------------------------------
    def close(self) -> None:
        """Flush anything pending and release the executor (idempotent)."""
        if not self.engine.closed:
            self.flush()
        self.engine.close()

    def __enter__(self) -> "SketchServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


__all__ = [
    "EstimateResponse",
    "ServeConfig",
    "ServerStats",
    "SketchServer",
    "answer_chunk",
    "prepare_request",
]

"""The unified estimation engine behind both serving facades.

Before this module existed, :class:`~repro.serve.server.SketchServer`
and :class:`~repro.serve.async_server.AsyncSketchServer` each owned a
copy of the request lifecycle — parse, route, dedup, cache, batch,
flush, scatter — so every cross-cutting capability (admission control,
deadlines, executors, metrics) had to be built twice.
:class:`EstimationEngine` is the single, transport-agnostic
implementation of that lifecycle; the two servers are now thin facades
that differ only in *when* flushes happen (caller-driven vs a
background loop) and in what ``submit`` returns (an index vs a
future).

The lifecycle, in engine terms::

    submit ──> prepare (parse + route, on the calling thread; a query
               that parses but has no covering sketch *yet* is not
               failed — it waits unrouted and is re-routed at flush
               time, so registrations racing the queue still win)
          ──> fast path (result-cache peek answers repeats instantly)
          ──> dedup (identical in-flight queries share one computation)
          ──> admission (bounded queue: shed or evict per shed_policy)
          ──> buffer (per-sketch FIFO with flush triggers)
    flush ──> take ready chunks (full / timed / idle / drain / forced)
          ──> expire (requests past their deadline_ms resolve as
               structured deadline errors without touching the model)
          ──> execute (the pluggable Executor answers each chunk —
               inline, thread pool, or process pool; see
               repro.serve.executor)
          ──> scatter (futures resolve, per-waiter accounting, caches
               and telemetry update)

**Admission control.**  ``max_queue_depth`` bounds the number of
buffered (pending, not-yet-flushed) computations.  When the bound is
hit, ``shed_policy`` decides who loses: ``"reject"`` sheds the *new*
request, ``"oldest"`` evicts the longest-waiting buffered request in
its favor (fresher traffic is usually more useful than a request that
has already waited longest).  Either way the loser receives a
*structured* :class:`EstimateResponse` — ``ok`` is false, ``code`` is
``"shed"`` — at submit time, never an unbounded queue and never an
exception through a future.  Requests past ``deadline_ms`` when their
flush finally happens resolve with ``code="deadline"`` instead of
consuming model time.  ``close()`` still drains every *accepted*
request: shedding happens at the door or by explicit eviction, never
by forgetting.

**Telemetry.**  The engine wires its counters into
:mod:`repro.metrics`: a queue-depth :class:`~repro.metrics.Gauge`,
shed / deadline-miss :class:`~repro.metrics.Counter`\\ s, and
:class:`~repro.metrics.LatencySummary` windows for per-chunk flush
latency and queueing wait.  One :meth:`stats` call — shared by both
facades — snapshots all of it plus the classic
:class:`ServerStats` counters into a JSON-friendly dict.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass, field
from typing import Sequence

from ..errors import FeaturizationError, ReproError, SketchError
from ..metrics import Counter, Gauge, LatencySummary
from ..workload.query import Query
from ..demo.manager import SketchManager
from .executor import EXECUTOR_NAMES, MP_START_METHODS, make_executor
from .feature_cache import DEFAULT_FEATURE_CACHE_SIZE, FeatureCache

#: ``EstimateResponse.code`` for a request refused (or evicted) by
#: admission control.
CODE_SHED = "shed"
#: ``EstimateResponse.code`` for a request that outlived its
#: ``deadline_ms`` in the queue.
CODE_DEADLINE = "deadline"
#: ``EstimateResponse.code`` for SQL the parser rejected.
CODE_PARSE = "parse"
#: ``EstimateResponse.code`` for a request no registered sketch can
#: serve: uncovered tables, an unknown pinned sketch name, or a sketch
#: dropped between routing and its flush.
CODE_ROUTE = "route"
#: ``EstimateResponse.code`` for a query outside the routed sketch's
#: featurization vocabulary (unknown column/operator/value encoding).
CODE_VOCAB = "vocab"
#: ``EstimateResponse.code`` for an unexpected server-side failure (a
#: bug surfaced by the never-strand-a-future safety nets).
CODE_INTERNAL = "internal"

#: Every ``EstimateResponse.code`` the engine can produce — the wire
#: protocol (:mod:`repro.serve.protocol`) serializes exactly these.
RESPONSE_CODES = (
    CODE_PARSE,
    CODE_ROUTE,
    CODE_VOCAB,
    CODE_SHED,
    CODE_DEADLINE,
    CODE_INTERNAL,
)

#: Valid ``ServeConfig.shed_policy`` values.
SHED_POLICIES = ("reject", "oldest")

#: Reserved buffer key for requests that parsed cleanly but could not
#: be routed at submit time.  They wait in this bucket and are
#: re-routed when their flush fires — so a covering sketch registered
#: between submit and flush still serves them (route-at-flush).  The
#: NUL byte keeps the key out of any legal sketch-name space.
_UNROUTED = "\x00unrouted"


@dataclass(frozen=True)
class ServeConfig:
    """The engine's knobs — one config for both serving facades.

    Batching: ``max_batch_size`` bounds each model micro-batch;
    ``max_wait_ms`` bounds how long the oldest buffered request may
    wait before a partial batch is flushed (background-loop serving);
    ``min_idle_ms`` flushes a quiesced burst early (``None`` disables).

    Execution: ``executor`` picks how micro-batches run — ``"inline"``
    (calling thread, the bit-identical default), ``"thread"`` (a
    thread pool overlapping chunks), or ``"process"`` (a process pool
    of ``executor_workers`` workers holding shipped weight snapshots;
    ``mp_start_method`` overrides the multiprocessing start method,
    default: the interpreter's platform default).  Two process-pool
    refinements (both require ``executor="process"``):
    ``shm_snapshots`` publishes snapshots as shared-memory segments
    that workers map instead of unpickle-copy (zero per-worker copies;
    see ``docs/performance.md``), and ``sticky_routing`` pins each
    sketch to one dedicated worker so worker-side featurization state
    stays warm across micro-batches (worker death degrades to the
    re-ship path).

    Admission: ``max_queue_depth`` bounds buffered computations
    (``None`` = unbounded); on overflow ``shed_policy`` either rejects
    the newcomer (``"reject"``) or evicts the longest-waiting request
    in its favor (``"oldest"``).  ``deadline_ms`` expires requests that
    wait longer than this before their flush (``None`` = no deadline).

    Caching: ``use_cache`` toggles the per-sketch result cache (and the
    submit-time fast path); ``dedup`` merges identical in-flight
    queries; ``feature_cache_size``/``feature_cache_ttl_s`` bound the
    shared template feature cache.  ``latency_window`` is the number of
    recent observations kept by the wait/flush-latency summaries.

    Every field is validated at construction; bad values raise
    :class:`~repro.errors.SketchError` (a :class:`~repro.errors.ReproError`)
    here rather than misbehaving downstream.
    """

    max_batch_size: int = 256
    max_wait_ms: float = 2.0
    min_idle_ms: float | None = 1.0
    use_cache: bool = True
    dedup: bool = True
    executor: str = "inline"
    executor_workers: int = 2
    max_queue_depth: int | None = None
    shed_policy: str = "reject"
    deadline_ms: float | None = None
    mp_start_method: str | None = None
    shm_snapshots: bool = False
    sticky_routing: bool = False
    feature_cache_size: int = DEFAULT_FEATURE_CACHE_SIZE
    feature_cache_ttl_s: float | None = 600.0
    latency_window: int = 8192

    def __post_init__(self):
        if self.max_batch_size <= 0:
            raise SketchError(
                f"max_batch_size must be positive, got {self.max_batch_size}"
            )
        if self.max_wait_ms <= 0:
            raise SketchError(
                f"max_wait_ms must be positive, got {self.max_wait_ms}"
            )
        if self.min_idle_ms is not None and self.min_idle_ms <= 0:
            raise SketchError(
                f"min_idle_ms must be positive (or None to disable), "
                f"got {self.min_idle_ms}"
            )
        if self.executor not in EXECUTOR_NAMES:
            raise SketchError(
                f"unknown executor {self.executor!r}; "
                f"choose one of {', '.join(EXECUTOR_NAMES)}"
            )
        if self.executor_workers <= 0:
            raise SketchError(
                f"executor_workers must be positive, got {self.executor_workers}"
            )
        if self.max_queue_depth is not None and self.max_queue_depth <= 0:
            raise SketchError(
                f"max_queue_depth must be positive (or None for unbounded), "
                f"got {self.max_queue_depth}"
            )
        if self.shed_policy not in SHED_POLICIES:
            raise SketchError(
                f"unknown shed_policy {self.shed_policy!r}; "
                f"choose one of {', '.join(SHED_POLICIES)}"
            )
        if self.deadline_ms is not None and self.deadline_ms <= 0:
            raise SketchError(
                f"deadline_ms must be positive (or None to disable), "
                f"got {self.deadline_ms}"
            )
        if self.mp_start_method is not None and (
            self.mp_start_method not in MP_START_METHODS
        ):
            raise SketchError(
                f"unknown mp_start_method {self.mp_start_method!r}; "
                f"choose one of {', '.join(MP_START_METHODS)}"
            )
        if self.shm_snapshots and self.executor != "process":
            raise SketchError(
                "shm_snapshots=True requires executor='process' "
                f"(got executor={self.executor!r}); the inline/thread "
                "paths already share the parent's arrays"
            )
        if self.sticky_routing and self.executor != "process":
            raise SketchError(
                "sticky_routing=True requires executor='process' "
                f"(got executor={self.executor!r}); only process workers "
                "hold per-worker state to pin"
            )
        if self.feature_cache_size < 0:
            raise SketchError(
                f"feature_cache_size must be >= 0, got {self.feature_cache_size}"
            )
        if self.latency_window <= 0:
            raise SketchError(
                f"latency_window must be positive, got {self.latency_window}"
            )


@dataclass
class EstimateResponse:
    """Outcome of one served request (exactly one of estimate/error set).

    ``code`` structures *every* failure class so callers (local or over
    the wire) can dispatch without string-matching messages:
    ``"parse"`` (malformed SQL), ``"route"`` (no covering sketch /
    unknown pin / sketch dropped before its flush), ``"vocab"`` (the
    query is outside the routed sketch's featurization vocabulary),
    ``"shed"`` (admission control refused or evicted the request),
    ``"deadline"`` (it expired in the queue), and ``"internal"`` (an
    unexpected server-side fault).  ``error`` still carries the
    human-readable message; successful responses keep ``code=None``.

    ``token`` is the ``snapshot_token`` of the sketch *version* that
    produced the answer (stamped by the chunk path and the fast cache
    path), so hot-swap audits can account every response to exactly one
    version.  Responses that never reached a sketch (parse/route/shed/
    deadline) keep ``token=None``.
    """

    request: Query | str
    query: Query | None
    sketch: str | None
    estimate: float | None
    cached: bool = False
    error: str | None = None
    code: str | None = None
    token: int | None = None

    @property
    def ok(self) -> bool:
        return self.error is None

    @property
    def shed(self) -> bool:
        return self.code == CODE_SHED


@dataclass
class ServerStats:
    """Cumulative counters over an engine's lifetime.

    One instance is shared by the engine and whichever facade drives
    it; ``n_requests == n_answered + n_errors`` at quiescence (shed and
    deadline-missed requests count toward ``n_errors`` and additionally
    toward their own counters).
    """

    n_requests: int = 0
    n_answered: int = 0
    n_errors: int = 0
    n_forward_batches: int = 0
    n_cache_hits: int = 0
    sketch_requests: dict = field(default_factory=dict)  # name -> count
    # intake fast paths
    n_deduped: int = 0          # futures merged onto an in-flight twin
    n_fast_cache_hits: int = 0  # answered at submit time from the cache
    # admission control
    n_shed: int = 0             # refused or evicted by admission control
    n_deadline_missed: int = 0  # expired in queue before their flush
    # flush-trigger accounting
    n_flushes: int = 0
    n_flushes_full: int = 0     # triggered by max_batch_size
    n_flushes_timed: int = 0    # triggered by max_wait_ms (or a deadline)
    n_flushes_idle: int = 0     # triggered by min_idle_ms quiescence
    n_flushes_drain: int = 0    # triggered by shutdown drain
    n_flushes_forced: int = 0   # triggered by a caller-driven flush()
    # executor health
    n_executor_fallbacks: int = 0  # jobs degraded to the inline path


def prepare_request(
    manager: SketchManager, request: Query | str, pinned: str | None
) -> EstimateResponse:
    """Parse and route one request (no model work yet).

    Returns a response with ``query`` and ``sketch`` resolved, or with
    ``error`` set when the SQL is malformed, no registered sketch covers
    the tables, or the pinned sketch name is unknown.  A ``code="route"``
    outcome here is *provisional*: the engine's intake converts it into
    a deferred, unrouted pending and retries routing at flush time.
    """
    response = EstimateResponse(
        request=request, query=None, sketch=pinned, estimate=None
    )
    try:
        if isinstance(request, str):
            from ..db.sql import parse_sql

            response.query = parse_sql(request)
        else:
            response.query = request
    except ReproError as exc:
        response.error = str(exc)
        response.code = CODE_PARSE
        return response
    try:
        if pinned is None:
            response.sketch = manager.route_name(response.query)
        else:
            manager.get_sketch(pinned)  # raise early if unknown
    except ReproError as exc:
        response.error = str(exc)
        response.code = CODE_ROUTE
    return response


def answer_chunk(
    sketch,
    chunk: list[EstimateResponse],
    use_cache: bool,
    stats: ServerStats,
    feature_cache=None,
) -> None:
    """Answer one micro-batch in place: a single ``estimate_many`` call.

    The model work behind that call runs on the sketch's compiled
    :class:`~repro.nn.inference.InferenceSession` — the autograd-free
    forward with pooled buffers — so a serving flush never touches the
    training graph (see ``docs/performance.md``).  On a batch-level
    failure (a query can pass routing yet fail featurization — unknown
    column/operator for this sketch's vocabulary) the chunk is retried
    one request at a time so only the offending requests fail.  This is
    the executors' inline chunk path; ``stats`` counters are updated
    for the whole chunk.
    """
    queries = [r.query for r in chunk]
    for r in chunk:
        # Version accounting: whatever happens below (batched answer,
        # per-query retry, cache hit), it is *this* sketch version doing
        # the work.
        r.token = sketch.snapshot_token
    if use_cache:
        for r in chunk:
            r.cached = r.query in sketch.cache
    try:
        estimates = sketch.estimate_many(
            queries, use_cache=use_cache, feature_cache=feature_cache
        )
    except ReproError:
        for r in chunk:
            # Re-check at retry time: an earlier retry in this loop
            # may have cached this query (duplicates in the chunk).
            r.cached = use_cache and r.query in sketch.cache
            try:
                r.estimate = sketch.estimate(r.query, use_cache=use_cache)
                if r.cached:
                    stats.n_cache_hits += 1
                else:
                    stats.n_forward_batches += 1
            except ReproError as exc:
                r.cached = False
                r.error = str(exc)
                # Featurization failures are the vocabulary class; any
                # other ReproError out of a single-query estimate means
                # this sketch cannot serve this (already-routed) query.
                r.code = (
                    CODE_VOCAB
                    if isinstance(exc, FeaturizationError)
                    else CODE_ROUTE
                )
        return
    if any(not r.cached for r in chunk):
        stats.n_forward_batches += 1
    stats.n_cache_hits += sum(r.cached for r in chunk)
    for r, estimate in zip(chunk, estimates):
        r.estimate = float(estimate)


class _Pending:
    """One in-flight computation shared by every deduped waiter.

    All waiters hold the *same* future object — deduplication merges a
    request by handing back the twin's future, so a duplicate costs one
    dict lookup and an increment, with no allocation and no extra
    ``set_result`` at resolve time.
    """

    __slots__ = ("response", "future", "waiters", "enqueued_at", "deadline_at")

    def __init__(
        self,
        response: EstimateResponse,
        enqueued_at: float,
        deadline_at: float | None = None,
    ):
        self.response = response
        self.future: Future[EstimateResponse] = Future()
        # Move the future to RUNNING immediately so no waiter can
        # cancel() it: the computation is shared, and a cancelled future
        # would make the flush path's set_result raise InvalidStateError
        # (stranding every other waiter).  An asyncio caller that
        # cancels its await stops waiting without affecting the shared
        # computation.
        self.future.set_running_or_notify_cancel()
        self.waiters = 1
        self.enqueued_at = enqueued_at
        self.deadline_at = deadline_at


class FlushJob:
    """One taken micro-batch on its way through an executor."""

    __slots__ = ("sketch", "pendings", "responses", "done")

    def __init__(self, sketch: str, pendings: list[_Pending]):
        self.sketch = sketch
        self.pendings = pendings
        self.responses = [p.response for p in pendings]
        self.done = False


class EstimationEngine:
    """One transport-agnostic request lifecycle; see the module docs.

    Thread-safety contract: ``submit``/``submit_many`` may be called
    from any number of threads; all shared state (buffers, dedup map,
    counters) lives under one lock, and the caches the executors touch
    are internally synchronized.  The flush side runs either on a
    caller's thread (:meth:`flush_pending`, the sync facade) or on the
    engine's background loop (:meth:`start_loop`, the async facade) —
    never both for one engine.  :meth:`close` drains every accepted
    request before shutting the executor down, so no future returned by
    ``submit`` is ever abandoned.
    """

    def __init__(
        self,
        manager: SketchManager,
        config: ServeConfig | None = None,
        feature_cache: FeatureCache | None = None,
    ):
        self.manager = manager
        self.config = config or ServeConfig()
        self.counters = ServerStats()
        self.feature_cache = feature_cache or FeatureCache(
            maxsize=self.config.feature_cache_size,
            ttl_seconds=self.config.feature_cache_ttl_s,
        )
        self.executor = make_executor(self.config)
        # repro.metrics primitives — the "wired" telemetry surface.
        self.queue_depth_gauge = Gauge()
        self.shed_counter = Counter()
        self.deadline_counter = Counter()
        self.flush_latency = LatencySummary(window=self.config.latency_window)
        self.queue_wait = LatencySummary(window=self.config.latency_window)

        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        # sketch name -> FIFO of _Pending awaiting a flush.  Deques:
        # flushes and "oldest" evictions consume from the front, and a
        # list's pop(0)/slice would go quadratic under sustained
        # overload — exactly when shedding must stay cheap.
        self._buffers: dict[str, deque[_Pending]] = {}
        # sketch name -> monotonic time of the newest arrival (idle trigger)
        self._last_enqueue: dict[str, float] = {}
        # (sketch name, canonical query) -> its buffered _Pending (dedup)
        self._inflight: dict[tuple[str, Query], _Pending] = {}
        self._depth = 0  # buffered computations (authoritative; gauge mirrors)
        self._depth_high_water = 0  # lifetime peak of _depth
        # Fast-path cache hits recorded for the flush side to replay as
        # real cache.get()s: submitters only peek (read-only), but
        # without a recency touch the hottest repeated queries would age
        # to LRU-oldest and be evicted under cache pressure.  Bounded —
        # dropping old touches only costs recency precision.
        self._touches: deque[tuple[str, Query]] = deque(maxlen=4096)
        self._touches_pending = 0
        self._thread: threading.Thread | None = None
        self._closed = False
        self._last_purge = time.monotonic()
        # Hot-swap barrier: ids of serving "rounds" (taken flush rounds
        # and intake-time settles) currently resolving futures.  A swap
        # replaces the sketch in the manager under the lock, then waits
        # for every round live *at replace time* to finish before
        # retiring the old version — rounds starting later fetch the new
        # sketch, so they never need waiting on (no starvation under
        # sustained load).
        self._round_ids = itertools.count(1)
        self._active_rounds: set[int] = set()
        self._swap_waiters = 0
        # Swap telemetry, surfaced via stats()/healthz.
        self._swaps = 0
        self._last_swap: dict | None = None
        #: Set by a LifecycleManager watching this engine (see
        #: repro.serve.lifecycle); stats()/healthz read its state().
        self.lifecycle = None

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    @property
    def closed(self) -> bool:
        return self._closed

    def start_loop(self) -> None:
        """Start the background flush loop (idempotent)."""
        with self._lock:
            self._ensure_loop_locked()

    def _ensure_loop_locked(self) -> None:
        if self._closed:
            raise SketchError("server is closed")
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._run, name="sketch-serve-flush", daemon=True
            )
            self._thread.start()

    def close(self, timeout: float | None = 30.0) -> None:
        """Drain every accepted request, then release the executor.

        Idempotent.  With the background loop running, the loop performs
        the drain and is joined; without one (the sync facade), buffered
        requests are flushed on the calling thread.  ``submit`` calls
        observing the closed flag raise :class:`~repro.errors.SketchError`;
        calls that won the race and were accepted are always answered.
        """
        with self._cond:
            already = self._closed
            self._closed = True
            thread = self._thread
            self._cond.notify_all()
        if thread is not None and thread.is_alive():
            thread.join(timeout)
            if thread.is_alive():
                # The loop is still draining past the join timeout: it
                # owns the executor now and closes it when the drain
                # completes (closing here would yank pools out from
                # under in-flight chunks, or let a respawned pool leak).
                return
        elif not already:
            # No loop thread: drain synchronously on this thread.
            self.flush_pending()
        self.executor.close()

    # ------------------------------------------------------------------
    # intake
    # ------------------------------------------------------------------
    def prepare(
        self, request: Query | str, pinned: str | None = None
    ) -> EstimateResponse:
        return prepare_request(self.manager, request, pinned)

    def _fast_hit(self, response: EstimateResponse) -> tuple[float, int] | None:
        """Submit-time result-cache peek (read-only; see touch replay).

        Returns ``(value, snapshot_token)`` so intake can re-validate
        under the lock that the peeked version is still the live one —
        a hot swap between this lock-free peek and the locked intake
        must not let a retired version's cache answer the request.
        """
        if not (response.ok and self.config.use_cache):
            return None
        try:
            sketch = self.manager.get_sketch(response.sketch)
        except SketchError:
            return None  # dropped since routing; the flush will report it
        # Token *before* value: if a clear_cache races in between, the
        # peek sees the post-clear cache while the token is pre-clear,
        # so intake's re-validation rejects the pair (never the other
        # way around, which would bless a stale value with a live token).
        token = sketch.snapshot_token
        value = sketch.cache.peek(response.query)
        if value is None:
            return None
        return value, token

    def submit(
        self,
        request: Query | str,
        sketch: str | None = None,
        *,
        coalesce: bool = True,
        ensure_loop: bool = False,
    ) -> "Future[EstimateResponse]":
        """Enqueue one request; returns a future for its response.

        Parsing and routing happen on the calling thread, so malformed
        SQL resolves immediately with an error response (never an
        exception through the future), as do cache hits and
        admission-control sheds.  A parseable request with no covering
        sketch is *deferred*, not failed: it buffers unrouted and is
        re-routed when its flush fires, so a sketch registered before
        the flush serves it (route-at-flush).  ``coalesce=False``
        (the sync facade) disables the submit-time cache fast path and
        dedup so a caller-driven flush sees exactly one response object
        per request; ``ensure_loop`` lazily starts the background loop
        (the async facade).
        """
        response = self.prepare(request, sketch)
        hit = self._fast_hit(response) if coalesce else None
        gather: dict = {"resolved": [], "victims": [], "notify": False}
        with self._cond:
            if self._closed:
                raise SketchError("server is closed")
            if ensure_loop:
                self._ensure_loop_locked()
            future = self._intake_one_locked(
                response, hit, time.monotonic(), coalesce, gather
            )
            if gather["notify"]:
                self._cond.notify_all()
            round_id = self._begin_round_locked(gather)
        try:
            self._settle_intake(gather)
        finally:
            self._end_round(round_id)
        return future

    def submit_many(
        self,
        requests: Sequence[Query | str],
        sketch: str | None = None,
        *,
        coalesce: bool = True,
        ensure_loop: bool = False,
    ) -> "list[Future[EstimateResponse]]":
        """Amortized intake: enqueue a whole batch under one lock.

        Per-request semantics match :meth:`submit` — parsing, routing,
        and cache peeks happen before the lock is taken, all
        buffer/dedup/admission bookkeeping happens inside a single
        critical section, and the flush loop is notified at most once.
        One deliberate difference under ``max_queue_depth``: the batch
        is admitted atomically (the flush side cannot drain mid-batch),
        so a single call larger than the depth bound sheds the excess —
        the batch's tail under ``shed_policy="reject"``, its head under
        ``"oldest"`` (each over-limit request evicts the batch's own
        earliest) — a batch *is* instantaneous load, and the bound is a
        bound.  Callers replaying a large log against a bounded queue
        should chunk their calls to the depth they want admitted.
        """
        prepared = []
        for request in requests:
            response = self.prepare(request, sketch)
            prepared.append(
                (response, self._fast_hit(response) if coalesce else None)
            )
        futures: list[Future[EstimateResponse]] = []
        gather: dict = {"resolved": [], "victims": [], "notify": False}
        with self._cond:
            if self._closed:
                raise SketchError("server is closed")
            if prepared and ensure_loop:
                self._ensure_loop_locked()
            now = time.monotonic()
            for response, hit in prepared:
                futures.append(
                    self._intake_one_locked(response, hit, now, coalesce, gather)
                )
            if gather["notify"]:
                self._cond.notify_all()
            round_id = self._begin_round_locked(gather)
        try:
            self._settle_intake(gather)
        finally:
            self._end_round(round_id)
        return futures

    def _intake_one_locked(
        self,
        response: EstimateResponse,
        hit: float | None,
        now: float,
        coalesce: bool,
        gather: dict,
    ) -> "Future[EstimateResponse]":
        """The one intake path: stats, fast paths, dedup, admission, buffer.

        Resolved futures and eviction victims are collected into
        ``gather`` and settled *outside* the lock by
        :meth:`_settle_intake`.
        """
        stats = self.counters
        stats.n_requests += 1
        deferred = (
            not response.ok
            and response.code == CODE_ROUTE
            and response.query is not None
        )
        if deferred:
            # Route-at-flush: the query is well-formed, nothing covers
            # it *yet*.  Clear the provisional error and buffer it under
            # the reserved key; _answer_round re-routes when the flush
            # fires, so a covering sketch registered in the meantime
            # still serves the request.
            response.error = None
            response.code = None
        if not response.ok:
            stats.n_errors += 1
            future: Future[EstimateResponse] = Future()
            gather["resolved"].append((future, response))
            return future
        if not deferred and hit is not None:
            value, hit_token = hit
            try:
                live_token = self.manager.get_sketch(
                    response.sketch
                ).snapshot_token
            except SketchError:
                live_token = None
            if live_token == hit_token:
                response.estimate = float(value)
                response.cached = True
                response.token = hit_token
                stats.n_answered += 1
                stats.n_cache_hits += 1
                stats.n_fast_cache_hits += 1
                self._count_sketch_locked(response.sketch)
                self.queue_wait.observe(0.0)
                self._record_touch_locked(response)
                future = Future()
                gather["resolved"].append((future, response))
                return future
            # The sketch was swapped or dropped between the lock-free
            # peek and this locked intake: the peeked value belongs to a
            # retired version.  Fall through as a cache miss so the
            # flush answers it with the live version.
        if not deferred and coalesce and self.config.dedup:
            twin = self._inflight.get((response.sketch, response.query))
            if twin is not None and (
                twin.deadline_at is None or now < twin.deadline_at
            ):
                # Merge onto the in-flight twin: the caller gets the
                # twin's own future (identical object for all waiters),
                # and shares the twin's fate — including its deadline;
                # joining a computation seconds before it expires means
                # expiring with it.  Only a twin *already* past its
                # deadline is skipped — it is doomed to a deadline
                # error, while this brand-new request deserves its own
                # (future) deadline; the fresh pending below replaces
                # it in the dedup map.
                twin.waiters += 1
                stats.n_deduped += 1
                return twin.future
        if not self._admit_locked(response, gather):
            future = Future()
            gather["resolved"].append((future, response))
            return future
        deadline_at = (
            None
            if self.config.deadline_ms is None
            else now + self.config.deadline_ms / 1000.0
        )
        pending = _Pending(response, now, deadline_at)
        buffer_key = _UNROUTED if deferred else response.sketch
        buffer = self._buffers.setdefault(buffer_key, deque())
        buffer.append(pending)
        if not deferred and coalesce and self.config.dedup:
            self._inflight[(response.sketch, response.query)] = pending
        self._last_enqueue[buffer_key] = now
        self._depth += 1
        if self._depth > self._depth_high_water:
            self._depth_high_water = self._depth
        self.queue_depth_gauge.set(self._depth)
        # Wake the flush loop only when its schedule actually changes: a
        # previously empty buffer needs a deadline, a full one needs an
        # immediate flush.  Intermediate arrivals only push the idle
        # deadline later, which the loop discovers on its own.
        if len(buffer) == 1 or len(buffer) >= self.config.max_batch_size:
            gather["notify"] = True
        return pending.future

    def _settle_intake(self, gather: dict) -> None:
        """Resolve intake-time futures outside the lock."""
        for pending in gather["victims"]:
            pending.future.set_result(pending.response)
        for future, response in gather["resolved"]:
            future.set_result(response)

    # -- hot-swap barrier -------------------------------------------------
    def _begin_round_locked(self, gather: dict | None = None) -> int | None:
        """Register a serving round (flush round or intake settle).

        Must be called under the lock, in the same critical section that
        took the work — otherwise a swap could complete between the take
        and the registration and a retired version's responses would
        resolve after the swap reported done.  With ``gather`` given,
        registration is skipped (returns None) when the intake produced
        nothing to settle.
        """
        if gather is not None and not (gather["resolved"] or gather["victims"]):
            return None
        round_id = next(self._round_ids)
        self._active_rounds.add(round_id)
        return round_id

    def _end_round(self, round_id: int | None) -> None:
        """Deregister a round; wake swaps waiting on the barrier."""
        if round_id is None:
            return
        with self._cond:
            self._active_rounds.discard(round_id)
            if self._swap_waiters:
                self._cond.notify_all()

    def swap_sketch(self, name: str, sketch, timeout: float | None = 30.0):
        """Atomically replace a live sketch; return the retired one.

        The swap is the engine's hot-refresh point (used by
        :mod:`repro.serve.lifecycle`): under the engine lock the manager's
        registration is switched to ``sketch``, then the call blocks until
        every serving round that was in flight *at the switch* has
        resolved its futures.  Only then is the old version retired
        (``clear_cache()`` — bumping its snapshot token and dropping its
        result cache), so:

        * zero dropped requests — nothing buffered is touched; pendings
          flushed after the switch are answered by the new version;
        * zero stale answers — submit-time cache peeks re-validate the
          snapshot token under the lock, and rounds starting after the
          switch fetch the new sketch from the manager;
        * exactly-one-version accounting — when this method returns, every
          response produced by the old version has already resolved, so no
          response stamped with the retired token can appear afterwards.

        Rounds starting *after* the switch are not waited on (they serve
        the new version already), so the barrier cannot starve under
        sustained traffic.  Must not be called from the flush loop or an
        executor callback — the barrier would wait on its own round.

        On ``timeout`` (seconds; ``None`` waits forever) a
        :class:`~repro.errors.SketchError` is raised: the new sketch *is*
        installed and serving, but the old version was not retired (its
        cache was left untouched so still-running rounds stay coherent).
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            if self._closed:
                raise SketchError("server is closed")
            old = self.manager.replace_sketch(name, sketch)
            barrier = set(self._active_rounds)
            self._swaps += 1
            self._last_swap = {
                "sketch": name,
                "old_token": old.snapshot_token,
                "new_token": sketch.snapshot_token,
                "registry_version": sketch.metadata.get("registry_version"),
                "at": time.time(),
            }
            self._swap_waiters += 1
            try:
                while barrier & self._active_rounds:
                    remaining = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        raise SketchError(
                            f"swap of {name!r} timed out after {timeout:g}s "
                            f"waiting for {len(barrier & self._active_rounds)} "
                            "in-flight serving round(s); the new version is "
                            "installed but the old one was not retired"
                        )
                    self._cond.wait(timeout=remaining)
            finally:
                self._swap_waiters -= 1
        # Retire outside the lock: bumping the old token / clearing its
        # caches is only safe once no round can still hold the object.
        old.clear_cache()
        return old

    def _drop_inflight_locked(self, pending: _Pending) -> None:
        """Remove ``pending`` from the dedup map — only if the entry is
        actually *its*.  An expired twin's key may already point at the
        fresh pending that replaced it; popping blindly would strip the
        replacement's entry and silently stop deduplicating that query.
        """
        key = (pending.response.sketch, pending.response.query)
        if self._inflight.get(key) is pending:
            del self._inflight[key]

    # -- admission control ----------------------------------------------
    def _admit_locked(self, response: EstimateResponse, gather: dict) -> bool:
        """Apply ``max_queue_depth``/``shed_policy``; True if admitted."""
        limit = self.config.max_queue_depth
        if limit is None or self._depth < limit:
            return True
        if self.config.shed_policy == "oldest":
            victim = self._evict_oldest_locked()
            if victim is not None:
                gather["victims"].append(victim)
                return True
        self._mark_shed_locked(
            response,
            f"request shed: queue depth {self._depth} >= "
            f"max_queue_depth {limit}",
        )
        self.counters.n_shed += 1
        self.counters.n_errors += 1
        self.shed_counter.inc()
        return False

    def _mark_shed_locked(self, response: EstimateResponse, message: str) -> None:
        response.error = message
        response.code = CODE_SHED

    def _evict_oldest_locked(self) -> _Pending | None:
        """Evict the longest-waiting buffered request (policy "oldest")."""
        oldest_name = None
        oldest: _Pending | None = None
        for name, buffer in self._buffers.items():
            if buffer and (oldest is None or buffer[0].enqueued_at < oldest.enqueued_at):
                oldest_name, oldest = name, buffer[0]
        if oldest is None:
            return None
        buffer = self._buffers[oldest_name]
        buffer.popleft()
        if not buffer:
            del self._buffers[oldest_name]
            self._last_enqueue.pop(oldest_name, None)
        self._drop_inflight_locked(oldest)
        self._depth -= 1
        self.queue_depth_gauge.set(self._depth)
        self._mark_shed_locked(
            oldest.response,
            "request shed: evicted by a newer request "
            f"(shed_policy='oldest', max_queue_depth {self.config.max_queue_depth})",
        )
        self.counters.n_shed += oldest.waiters
        self.counters.n_errors += oldest.waiters
        self.shed_counter.inc(oldest.waiters)
        return oldest

    # ------------------------------------------------------------------
    # bookkeeping shared with executors
    # ------------------------------------------------------------------
    def _count_sketch_locked(self, name: str, n: int = 1) -> None:
        self.counters.sketch_requests[name] = (
            self.counters.sketch_requests.get(name, 0) + n
        )

    def _record_touch_locked(self, response: EstimateResponse) -> None:
        """Queue a fast-path hit for the flush side's recency replay.

        The loop is woken at most once per batch of touches — a fully
        warm stream would otherwise never wake it and never refresh
        recency at all.
        """
        self._touches.append((response.sketch, response.query))
        self._touches_pending += 1
        if self._touches_pending >= 256:
            self._touches_pending = 0
            self._cond.notify_all()

    def _replay_touches(self) -> None:
        """Flush side: turn queued submit-time peeks into real cache gets.

        Only the flush side mutates result-cache recency for buffered
        work; replaying the peeks here keeps hot repeated queries at
        the MRU end so cache pressure evicts cold entries, not the
        hottest.
        """
        with self._lock:
            if not self._touches:
                return
            touches = list(self._touches)
            self._touches.clear()
            self._touches_pending = 0
        for name, query in touches:
            try:
                self.manager.get_sketch(name).cache.get(query)
            except SketchError:
                continue  # sketch dropped since the hit; nothing to touch

    def record_flush_latency(self, seconds: float) -> None:
        self.flush_latency.observe(seconds)

    def merge_chunk_stats(
        self, n_forward_batches: int = 0, n_cache_hits: int = 0
    ) -> None:
        with self._lock:
            self.counters.n_forward_batches += n_forward_batches
            self.counters.n_cache_hits += n_cache_hits

    def count_executor_fallback(self, n: int = 1) -> None:
        with self._lock:
            self.counters.n_executor_fallbacks += n

    def answer_subset(self, sketch_name: str, responses: list) -> None:
        """Answer ``responses`` through the inline chunk path (no
        completion) — the executors' degraded/fallback building block."""
        if not responses:
            return
        local = ServerStats()
        t0 = time.perf_counter()
        try:
            sketch = self.manager.get_sketch(sketch_name)
        except SketchError as exc:
            # The sketch was dropped between routing and flushing.
            for response in responses:
                if response.ok and response.estimate is None:
                    response.error = str(exc)
                    response.code = CODE_ROUTE
        else:
            try:
                answer_chunk(
                    sketch,
                    responses,
                    use_cache=self.config.use_cache,
                    stats=local,
                    feature_cache=self.feature_cache,
                )
            except Exception as exc:  # never strand a future on a bug
                for response in responses:
                    if response.ok and response.estimate is None:
                        response.error = f"internal serving error: {exc!r}"
                        response.code = CODE_INTERNAL
        self.merge_chunk_stats(local.n_forward_batches, local.n_cache_hits)
        self.record_flush_latency(time.perf_counter() - t0)

    def run_job_inline(self, job: FlushJob) -> None:
        """Answer one flush job on the calling thread and complete it."""
        self.answer_subset(job.sketch, job.responses)
        self.complete_job(job)

    def complete_job(self, job: FlushJob) -> None:
        """Per-waiter accounting, then resolve the job's futures.

        Idempotent (executor fallbacks may overlap responsibility); the
        engine also calls it as a safety net after an executor round so
        an executor bug can never strand a future.
        """
        with self._lock:
            if job.done:
                return
            job.done = True
            for pending in job.pendings:
                # Count every waiter, not every computation, so
                # n_requests == n_answered + n_errors at quiescence even
                # with dedup merging futures.
                if pending.response.ok:
                    self.counters.n_answered += pending.waiters
                else:
                    self.counters.n_errors += pending.waiters
                self._count_sketch_locked(job.sketch, pending.waiters)
        for pending in job.pendings:
            pending.future.set_result(pending.response)

    # ------------------------------------------------------------------
    # the flush side
    # ------------------------------------------------------------------
    @property
    def pending(self) -> int:
        """Buffered computations not yet taken by a flush (dedup'd)."""
        with self._lock:
            return self._depth

    def flush_pending(self) -> None:
        """Take and answer everything buffered, on the calling thread.

        The caller-driven flush (sync facade).  All ready chunks of one
        call form a single executor round, so a thread/process executor
        overlaps them across workers.
        """
        with self._cond:
            taken = self._take_ready_locked(time.monotonic(), force=True)
            round_id = self._begin_round_locked() if taken else None
        try:
            self._answer_round(taken)
        finally:
            self._end_round(round_id)
        self._replay_touches()

    def _run(self) -> None:
        """The background flush loop (async facade)."""
        drained = False
        while not drained:
            try:
                with self._cond:
                    batches = None
                    round_id = None
                    while True:
                        now = time.monotonic()
                        batches = self._take_ready_locked(now)
                        if batches or self._touches:
                            if batches:
                                round_id = self._begin_round_locked()
                            break
                        if self._closed:
                            # Drained: buffers are empty (a closed take
                            # grabs everything), so the loop is done.
                            drained = True
                            break
                        timeout = self._next_deadline_locked(now)
                        if timeout is None:
                            self._maybe_purge_feature_cache(now)
                        self._cond.wait(timeout=timeout)
                try:
                    self._answer_round(batches)
                finally:
                    self._end_round(round_id)
                self._replay_touches()
            except Exception:
                # The loop IS the no-stranded-futures contract: an
                # unexpected error (say, a duck-typed feature cache
                # missing a method) must not kill the thread and leave
                # buffered futures unresolved forever.  Back off
                # briefly so a persistent fault cannot hot-spin, and
                # keep draining.
                time.sleep(0.05)
        # The drain is complete; release the executor from here so a
        # close() that timed out waiting for this loop never races its
        # pools (executor close is idempotent — the normal close() path
        # also calls it after joining us).
        self.executor.close()

    def _maybe_purge_feature_cache(self, now: float) -> None:
        """Reap expired feature-cache entries while the loop is idle.

        Expiry is lazy on lookup, which never fires for entries whose
        featurizer (a dropped/rebuilt sketch's) is gone — their keys are
        never looked up again.  One sweep per TTL while idle keeps such
        orphans from pinning vocabularies and structure rows for the
        engine's lifetime.
        """
        ttl = getattr(self.feature_cache, "ttl_seconds", None)
        if ttl is None or now - self._last_purge < ttl:
            return
        self._last_purge = now
        purge = getattr(self.feature_cache, "purge_expired", None)
        if purge is not None:
            purge()

    def _next_deadline_locked(self, now: float) -> float | None:
        """Seconds until some buffer's wait/idle/deadline trigger fires."""
        min_idle_s = (
            None
            if self.config.min_idle_ms is None
            else self.config.min_idle_ms / 1000.0
        )
        deadlines = []
        for name, buffer in self._buffers.items():
            if not buffer:
                continue
            head = buffer[0]
            deadline = head.enqueued_at + self.config.max_wait_ms / 1000.0
            if min_idle_s is not None:
                deadline = min(deadline, self._last_enqueue[name] + min_idle_s)
            if head.deadline_at is not None:
                deadline = min(deadline, head.deadline_at)
            deadlines.append(deadline)
        if not deadlines:
            return None
        return max(min(deadlines) - now, 0.0)

    def _take_ready_locked(
        self, now: float, force: bool = False
    ) -> list[tuple[str, str, list[_Pending]]]:
        """Pop every chunk whose flush trigger has fired.

        Returns ``(sketch name, trigger, chunk)`` triples.  Taken
        requests leave the dedup map immediately: a duplicate arriving
        while the batch is being answered becomes a fresh pending
        request (and, with caching on, a cache hit at its own submit or
        flush time) rather than attaching to a computation whose
        futures may already be resolving.  A buffer holding several
        ``max_batch_size`` chunks yields them all in one round so
        thread/process executors can overlap them.
        """
        max_batch = self.config.max_batch_size
        max_wait_s = self.config.max_wait_ms / 1000.0
        min_idle_s = (
            None
            if self.config.min_idle_ms is None
            else self.config.min_idle_ms / 1000.0
        )
        taken: list[tuple[str, str, list[_Pending]]] = []
        for name in list(self._buffers):
            buffer = self._buffers[name]
            if not buffer:
                del self._buffers[name]
                self._last_enqueue.pop(name, None)
                continue
            head = buffer[0]
            full = len(buffer) >= max_batch
            timed = now - head.enqueued_at >= max_wait_s or (
                head.deadline_at is not None and now >= head.deadline_at
            )
            idle = (
                min_idle_s is not None
                and now - self._last_enqueue[name] >= min_idle_s
            )
            if not (full or timed or idle or force or self._closed):
                continue
            # Everything goes when any non-size trigger fired; a pure
            # size trigger takes only the complete chunks and leaves the
            # tail to its own wait/idle deadline.
            take_all = timed or idle or force or self._closed
            chunks: list[list[_Pending]] = []
            while len(buffer) >= max_batch:
                chunks.append([buffer.popleft() for _ in range(max_batch)])
            if buffer and take_all:
                chunks.append(list(buffer))
                buffer.clear()
            if not buffer:
                del self._buffers[name]
                self._last_enqueue.pop(name, None)
            for chunk in chunks:
                # Ownership beats timing: a close() drain or a
                # caller-driven flush is counted as such even when the
                # buffer head had also outwaited max_wait_ms (a sync
                # caller almost always flushes later than the async
                # deadline, and those flushes are not "timed").
                if len(chunk) >= max_batch:
                    trigger = "full"
                elif self._closed:
                    trigger = "drain"
                elif force:
                    trigger = "forced"
                elif timed:
                    trigger = "timed"
                else:
                    trigger = "idle"
                self.counters.n_flushes += 1
                setattr(
                    self.counters,
                    f"n_flushes_{trigger}",
                    getattr(self.counters, f"n_flushes_{trigger}") + 1,
                )
                self._depth -= len(chunk)
                for pending in chunk:
                    self.queue_wait.observe(now - pending.enqueued_at)
                    self._drop_inflight_locked(pending)
                taken.append((name, trigger, chunk))
        if taken:
            self.queue_depth_gauge.set(self._depth)
        return taken

    def _reroute(self, response: EstimateResponse) -> str | None:
        """Second routing attempt, at flush time, for a deferred request.

        Returns the serving sketch's name, or marks the response with
        ``code="route"`` and returns None when routing still fails.  A
        pinned request (``response.sketch`` already set) re-checks the
        pin; an unpinned one re-runs narrowest-cover routing.
        """
        try:
            if response.sketch is not None:
                self.manager.get_sketch(response.sketch)  # pin now known?
                return response.sketch
            response.sketch = self.manager.route_name(response.query)
            return response.sketch
        except ReproError as exc:
            response.error = str(exc)
            response.code = CODE_ROUTE
            return None

    def _answer_round(
        self, taken: list[tuple[str, str, list[_Pending]]]
    ) -> None:
        """Expire, execute, and resolve one round of taken chunks."""
        if not taken:
            return
        now = time.monotonic()
        jobs: list[FlushJob] = []
        expired: list[tuple[str, _Pending]] = []
        unroutable: list[_Pending] = []
        for name, _trigger, chunk in taken:
            live = []
            for pending in chunk:
                if pending.deadline_at is not None and now >= pending.deadline_at:
                    expired.append((name, pending))
                else:
                    live.append(pending)
            if not live:
                continue
            if name == _UNROUTED:
                # Route-at-flush: requests that had no covering sketch
                # at submit time get their route decided *now*, so a
                # sketch registered since then serves them.
                routed: dict[str, list[_Pending]] = {}
                for pending in live:
                    target = self._reroute(pending.response)
                    if target is None:
                        unroutable.append(pending)
                    else:
                        routed.setdefault(target, []).append(pending)
                for target, group in routed.items():
                    jobs.append(FlushJob(target, group))
            else:
                jobs.append(FlushJob(name, live))
        if unroutable:
            with self._lock:
                for pending in unroutable:
                    self.counters.n_errors += pending.waiters
            for pending in unroutable:
                pending.future.set_result(pending.response)
        if expired:
            with self._lock:
                for _name, pending in expired:
                    response = pending.response
                    response.error = (
                        f"deadline of {self.config.deadline_ms:g}ms exceeded "
                        "before the request could be served"
                    )
                    response.code = CODE_DEADLINE
                    self.counters.n_deadline_missed += pending.waiters
                    self.counters.n_errors += pending.waiters
                    self.deadline_counter.inc(pending.waiters)
            for _name, pending in expired:
                pending.future.set_result(pending.response)
        if not jobs:
            return
        try:
            self.executor.run(self, jobs)
        except Exception as exc:  # never strand a future on a bug
            for job in jobs:
                for response in job.responses:
                    if response.ok and response.estimate is None:
                        response.error = f"internal serving error: {exc!r}"
                        response.code = CODE_INTERNAL
        # Safety net: an executor must complete every job, but a buggy
        # or interrupted one must not cost a caller their future.
        for job in jobs:
            self.complete_job(job)

    # ------------------------------------------------------------------
    # telemetry
    # ------------------------------------------------------------------
    def wait_summary(self) -> dict[str, float]:
        """Queueing-wait percentiles (seconds) over the recent window.

        The wait is submit-to-flush-start — the part of latency the
        ``max_wait_ms`` trigger bounds; model time is excluded.  Fast
        cache hits count as zero wait.
        """
        return self.queue_wait.summary()

    def stats(self) -> dict:
        """One JSON-friendly snapshot of the whole engine — the single
        telemetry call shared by both serving facades.

        Combines the cumulative :class:`ServerStats` counters with the
        :mod:`repro.metrics` primitives: the queue-depth gauge, the
        shed / deadline-miss counters, and the p50/p95/p99 flush-latency
        and queue-wait summaries.
        """
        c = self.counters
        with self._lock:
            sketch_requests = dict(c.sketch_requests)
            depth_peak = self._depth_high_water
            swaps = self._swaps
            last_swap = None if self._last_swap is None else dict(self._last_swap)
        lifecycle = self.lifecycle
        return {
            "executor": self.executor.name,
            "executor_workers": self.executor.workers,
            # Read through the repro.metrics primitives, so the gauge
            # and counters are the load-bearing source for this
            # snapshot (the ServerStats ints remain the dataclass
            # surface; both are updated together under the engine
            # lock).
            "queue_depth": int(self.queue_depth_gauge.value),
            "queue_depth_peak": depth_peak,
            "max_queue_depth": self.config.max_queue_depth,
            "requests": c.n_requests,
            "answered": c.n_answered,
            "errors": c.n_errors,
            "shed": self.shed_counter.value,
            "deadline_missed": self.deadline_counter.value,
            "cache_hits": c.n_cache_hits,
            "fast_cache_hits": c.n_fast_cache_hits,
            "deduped": c.n_deduped,
            "forward_batches": c.n_forward_batches,
            "executor_fallbacks": c.n_executor_fallbacks,
            "flushes": {
                "total": c.n_flushes,
                "full": c.n_flushes_full,
                "timed": c.n_flushes_timed,
                "idle": c.n_flushes_idle,
                "drain": c.n_flushes_drain,
                "forced": c.n_flushes_forced,
            },
            "flush_latency": self.flush_latency.summary(),
            "queue_wait": self.queue_wait.summary(),
            "sketch_requests": sketch_requests,
            # sketch lifecycle (hot swaps, versions, background manager)
            "swaps": swaps,
            "last_swap": last_swap,
            "versions": self.describe_versions(),
            "lifecycle": None if lifecycle is None else lifecycle.state(),
        }

    def describe_versions(self) -> dict:
        """name -> {token, registry_version} for every live sketch.

        ``token`` is the process-local snapshot token (NOT comparable
        across processes); ``registry_version`` is the fleet-comparable
        version stamped by :class:`~repro.serve.registry.SketchRegistry`
        at save time (None for sketches never saved to a registry).
        """
        versions: dict[str, dict] = {}
        for name in self.manager.list_sketches():
            try:
                sketch = self.manager.get_sketch(name)
            except SketchError:
                continue  # dropped while iterating
            versions[name] = {
                "token": sketch.snapshot_token,
                "registry_version": sketch.metadata.get("registry_version"),
            }
        return versions

    def __repr__(self) -> str:
        return (
            f"EstimationEngine(executor={self.executor.name!r}, "
            f"pending={self.pending}, closed={self._closed})"
        )


__all__ = [
    "CODE_DEADLINE",
    "CODE_INTERNAL",
    "CODE_PARSE",
    "CODE_ROUTE",
    "CODE_SHED",
    "CODE_VOCAB",
    "RESPONSE_CODES",
    "SHED_POLICIES",
    "EstimateResponse",
    "EstimationEngine",
    "FlushJob",
    "ServeConfig",
    "ServerStats",
    "answer_chunk",
    "prepare_request",
]

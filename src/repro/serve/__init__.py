"""Sketch serving: one estimation engine, two facades, pluggable executors.

The paper's pitch is that a Deep Sketch is "fast to query (within
milliseconds)"; this package turns the one-query-at-a-time estimation
path into a throughput-oriented serving subsystem.  Since the engine
refactor it is layered as:

* :class:`EstimationEngine` — the single, transport-agnostic request
  lifecycle: parse, route, dedup, result-cache fast path, **admission
  control** (bounded queue with structured shed responses and
  per-request deadlines), per-sketch micro-batching, execution, and
  scatter.  One implementation, shared by both front doors.
* :class:`SketchServer` — the synchronous facade: caller-driven
  flushes over an explicit queue (``submit``/``flush``) or a stream
  (``serve``).  Right for offline streams and benchmarks.
* :class:`AsyncSketchServer` — the concurrent facade: thread-safe
  ``submit()`` returning futures (``submit_async()`` for ``asyncio``),
  with a background loop flushing under full/timed/idle/drain
  triggers, bounding tail latency while sharing one flush across all
  waiting clients.
* Executors (:mod:`repro.serve.executor`) — where micro-batches run:
  ``inline`` (calling thread; bit-identical to the pre-engine paths),
  ``thread`` (overlapping chunks on a thread pool), or ``process``
  (true multi-core scale-out over shipped
  :class:`~repro.core.sketch.SketchSnapshot` weight replicas).

Both facades produce estimates numerically identical to the
single-query path (see :mod:`repro.serve.bench` for the parity caveat
and the measurement harness) and share one telemetry snapshot —
``server.stats_summary()`` / ``EstimationEngine.stats()`` — wired
into :mod:`repro.metrics` gauges, counters, and latency summaries.
"""

from .async_server import AsyncServeConfig, AsyncServerStats, AsyncSketchServer
from .bench import ServingBenchResult, run_serving_benchmark, tile_workload
from .engine import (
    CODE_DEADLINE,
    CODE_SHED,
    EstimateResponse,
    EstimationEngine,
    ServeConfig,
    ServerStats,
    answer_chunk,
    prepare_request,
)
from .executor import (
    EXECUTOR_NAMES,
    InlineExecutor,
    ProcessExecutor,
    ThreadExecutor,
    make_executor,
)
from .feature_cache import FeatureCache
from .server import SketchServer

__all__ = [
    "EstimationEngine",
    "SketchServer",
    "ServeConfig",
    "ServerStats",
    "AsyncSketchServer",
    "AsyncServeConfig",
    "AsyncServerStats",
    "CODE_DEADLINE",
    "CODE_SHED",
    "EXECUTOR_NAMES",
    "FeatureCache",
    "EstimateResponse",
    "InlineExecutor",
    "ProcessExecutor",
    "ServingBenchResult",
    "ThreadExecutor",
    "answer_chunk",
    "make_executor",
    "prepare_request",
    "run_serving_benchmark",
    "tile_workload",
]

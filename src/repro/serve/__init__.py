"""Batched sketch-serving engine.

The paper's pitch is that a Deep Sketch is "fast to query (within
milliseconds)"; this package turns the one-query-at-a-time estimation
path into a throughput-oriented serving subsystem.  A
:class:`SketchServer` accepts a stream of SQL strings or structured
queries, parses and routes them per sketch, coalesces them into
micro-batches, and answers each micro-batch with a single MSCN forward
pass over the vectorized pre-model pipeline
(:func:`repro.sampling.bitmaps.batch_bitmaps` +
:meth:`repro.core.featurization.Featurizer.featurize_batch`), backed by
a per-sketch LRU result cache.
"""

from .bench import ServingBenchResult, run_serving_benchmark, tile_workload
from .server import EstimateResponse, ServeConfig, ServerStats, SketchServer

__all__ = [
    "SketchServer",
    "ServeConfig",
    "ServerStats",
    "EstimateResponse",
    "ServingBenchResult",
    "run_serving_benchmark",
    "tile_workload",
]

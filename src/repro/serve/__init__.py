"""Sketch serving: one estimation API everywhere, local or remote.

The paper's pitch is that a Deep Sketch is "fast to query (within
milliseconds)"; this package turns the one-query-at-a-time estimation
path into a throughput-oriented serving subsystem.  The public surface
is the :class:`SketchService` protocol — ``submit`` / ``submit_many`` /
``estimate`` / ``serve`` / ``plan`` / ``stats_summary`` / ``close`` —
with interchangeable implementations, so swapping in-process serving
for a network round trip is a one-line change:

* :class:`SketchServer` — in-process, synchronous: caller-driven
  flushes over an explicit queue (``submit``/``flush``) or a stream
  (``serve``).  Right for offline streams and benchmarks.
* :class:`AsyncSketchServer` — in-process, concurrent: thread-safe
  ``submit()`` returning futures (``submit_async()`` for ``asyncio``),
  with a background loop flushing under full/timed/idle/drain
  triggers, bounding tail latency while sharing one flush across all
  waiting clients.
* :class:`RemoteSketchServer` — the client SDK: the same surface over
  the versioned wire protocol (:mod:`repro.serve.protocol`) to a
  :class:`SketchHTTPServer` front door.
* :class:`SketchGateway` — the multi-node tier: the same surface over
  N backend front doors, with fleet-wide routing, sharding +
  replication, health-checked failover, and merged telemetry
  (:mod:`repro.serve.gateway`).  Front it with
  ``SketchHTTPServer(service=gateway)`` and it speaks wire v1 on both
  sides.

Underneath the facades sits one transport-agnostic
:class:`EstimationEngine` — parse, route, dedup, result-cache fast
path, **admission control** (bounded queue with structured shed
responses and per-request deadlines), per-sketch micro-batching,
execution, scatter — and pluggable executors
(:mod:`repro.serve.executor`): ``inline`` (calling thread;
bit-identical to the pre-engine paths), ``thread``, or ``process``
(true multi-core scale-out over shipped
:class:`~repro.core.sketch.SketchSnapshot` weight replicas).  The HTTP
front door (:mod:`repro.serve.http`) is pure request/response
marshalling over that engine, so concurrent HTTP clients batch, dedup,
and cache-hit together exactly like in-process submitters.

All implementations produce estimates numerically identical to the
single-query path (see :mod:`repro.serve.bench` for the parity caveat
and the measurement harness) and share one telemetry snapshot —
``service.stats_summary()`` / ``EstimationEngine.stats()`` /
``GET /v1/stats`` — wired into :mod:`repro.metrics` gauges, counters,
and latency summaries.
"""

from .async_server import AsyncServeConfig, AsyncServerStats, AsyncSketchServer
from .bench import ServingBenchResult, run_serving_benchmark, tile_workload
from .client import RemoteSketchServer
from .engine import (
    CODE_DEADLINE,
    CODE_INTERNAL,
    CODE_PARSE,
    CODE_ROUTE,
    CODE_SHED,
    CODE_VOCAB,
    RESPONSE_CODES,
    EstimateResponse,
    EstimationEngine,
    ServeConfig,
    ServerStats,
    answer_chunk,
    prepare_request,
)
from .executor import (
    EXECUTOR_NAMES,
    InlineExecutor,
    ProcessExecutor,
    StickyProcessExecutor,
    ThreadExecutor,
    make_executor,
)
from .feature_cache import FeatureCache
from .gateway import SketchGateway
from .http import SketchHTTPServer, healthz_payload
from .lifecycle import PHASES, LifecycleConfig, LifecycleManager
from .plan import (
    CODE_PLAN,
    PLAN_RESPONSE_CODES,
    PlanResponse,
    SubplanEstimate,
    plan_failure,
    plan_query,
)
from .protocol import PROTOCOL_VERSION
from .registry import SketchRegistry
from .server import SketchServer
from .service import SketchService
from .shm import SegmentDescriptor, SnapshotSegment, live_segment_names
from .wire import WIRE_VERSION, BinaryFrameServer

__all__ = [
    "EstimationEngine",
    "SketchServer",
    "SketchService",
    "ServeConfig",
    "ServerStats",
    "AsyncSketchServer",
    "AsyncServeConfig",
    "AsyncServerStats",
    "RemoteSketchServer",
    "SketchGateway",
    "SketchHTTPServer",
    "SketchRegistry",
    "LifecycleConfig",
    "LifecycleManager",
    "PHASES",
    "healthz_payload",
    "PROTOCOL_VERSION",
    "CODE_DEADLINE",
    "CODE_INTERNAL",
    "CODE_PARSE",
    "CODE_PLAN",
    "CODE_ROUTE",
    "CODE_SHED",
    "CODE_VOCAB",
    "RESPONSE_CODES",
    "PLAN_RESPONSE_CODES",
    "PlanResponse",
    "SubplanEstimate",
    "plan_failure",
    "plan_query",
    "EXECUTOR_NAMES",
    "FeatureCache",
    "EstimateResponse",
    "InlineExecutor",
    "ProcessExecutor",
    "StickyProcessExecutor",
    "ServingBenchResult",
    "ThreadExecutor",
    "answer_chunk",
    "make_executor",
    "prepare_request",
    "run_serving_benchmark",
    "tile_workload",
    "BinaryFrameServer",
    "WIRE_VERSION",
    "SegmentDescriptor",
    "SnapshotSegment",
    "live_segment_names",
]

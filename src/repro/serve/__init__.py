"""Sketch-serving engine: batched synchronous and latency-bounded async.

The paper's pitch is that a Deep Sketch is "fast to query (within
milliseconds)"; this package turns the one-query-at-a-time estimation
path into a throughput-oriented serving subsystem with two front doors:

* :class:`SketchServer` — the synchronous engine.  A caller hands it a
  stream (``serve``) or an explicit queue (``submit``/``flush``); it
  parses and routes per sketch, coalesces micro-batches, and answers
  each micro-batch with a single MSCN forward pass over the vectorized
  pre-model pipeline (:func:`repro.sampling.bitmaps.batch_bitmaps` +
  :meth:`repro.core.featurization.Featurizer.featurize_batch`), backed
  by a per-sketch LRU result cache.
* :class:`AsyncSketchServer` — the concurrent engine.  Thread-safe
  ``submit()`` returns a future (``submit_async()`` for ``asyncio``);
  a background loop flushes per-sketch micro-batches when they fill
  *or* when the oldest request has waited ``max_wait_ms``, bounding
  tail latency while sharing one flush across all waiting clients.
  Identical in-flight queries are deduplicated across sketches, and a
  shared template-keyed :class:`FeatureCache` reuses structure feature
  rows between queries that differ only in literals.

Both engines produce estimates numerically identical to the
single-query path (see :mod:`repro.serve.bench` for the parity caveat
and the measurement harness).
"""

from .async_server import AsyncServeConfig, AsyncServerStats, AsyncSketchServer
from .bench import ServingBenchResult, run_serving_benchmark, tile_workload
from .feature_cache import FeatureCache
from .server import (
    EstimateResponse,
    ServeConfig,
    ServerStats,
    SketchServer,
    answer_chunk,
    prepare_request,
)

__all__ = [
    "SketchServer",
    "ServeConfig",
    "ServerStats",
    "AsyncSketchServer",
    "AsyncServeConfig",
    "AsyncServerStats",
    "FeatureCache",
    "EstimateResponse",
    "ServingBenchResult",
    "answer_chunk",
    "prepare_request",
    "run_serving_benchmark",
    "tile_workload",
]

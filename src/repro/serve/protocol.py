"""The versioned wire protocol of the estimation service.

Every remote transport — the stdlib HTTP front door
(:mod:`repro.serve.http`), the client SDK
(:mod:`repro.serve.client`), and whatever gRPC/shard fan-out comes
later — speaks the JSON schemas defined **here and only here**.  Both
sides import the same ``to_wire``/``from_wire`` pairs, so the schema
exists exactly once and a round trip is an identity:
``response_from_wire(response_to_wire(r)) == r`` for every response
class the engine produces (ok, ``parse``, ``route``, ``vocab``,
``shed``, ``deadline``, ``internal``).

Envelopes
---------

Every payload carries ``protocol_version`` (currently ``1``).  A
receiver rejects other versions with
:class:`~repro.errors.ProtocolError` — explicit version skew beats
silent misparses when client and server are deployed independently.

Request envelope (``POST /v1/estimate``)::

    {"protocol_version": 1, "sql": "SELECT COUNT(*) ...", "sketch": null}

Batch request envelope (``POST /v1/estimate_batch``)::

    {"protocol_version": 1, "queries": ["SELECT ...", ...], "sketch": null}

``sketch`` pins a named sketch (``null`` routes to the narrowest
covering one) — the same semantics as the in-process facades.

Response envelope: the structured
:class:`~repro.serve.engine.EstimateResponse` serialization plus
server-side timing::

    {"protocol_version": 1, "ok": true, "request": "SELECT ...",
     "request_kind": "sql", "query": "SELECT ...", "sketch": "imdb",
     "estimate": 1234.0, "cached": false, "error": null, "code": null,
     "token": 7, "server_ms": 1.7}

``token`` is the serving sketch's process-local snapshot version (see
``EstimateResponse.token``); ``null`` for responses that never reached
a sketch.  It travels so hot-swap audits work across the wire, but is
only comparable within one backend process.

``request_kind`` records whether the in-process response carried raw
SQL text (``"sql"``) or a canonical :class:`~repro.workload.query.Query`
object (``"query"``); because ``parse_sql(to_sql(q)) == q`` holds for
every valid query, ``from_wire`` reconstructs the exact original
request object either way.  ``query`` is the canonical query's SQL
text (``null`` when parsing failed).  ``server_ms`` is informational
timing (not an ``EstimateResponse`` field): the server's measured
handling time for the request or batch.

Batch response envelope::

    {"protocol_version": 1, "responses": [<response envelope>, ...],
     "server_ms": 3.2}

Error codes travel verbatim (``code`` is one of
:data:`repro.serve.engine.RESPONSE_CODES` or ``null``), so a remote
caller dispatches on the same constants a local caller does.
"""

from __future__ import annotations

from typing import Sequence

from ..errors import ProtocolError
from ..workload.query import Query
from .engine import EstimateResponse, RESPONSE_CODES

#: The wire schema version this build speaks.  Bump on any breaking
#: change to the envelopes below; receivers reject mismatches.
PROTOCOL_VERSION = 1

#: ``request_kind`` values: what the in-process ``request`` field held.
_KIND_SQL = "sql"
_KIND_QUERY = "query"


def _require(payload: dict, field: str, types, what: str):
    """One validated field access; missing/mistyped raises ProtocolError."""
    if field not in payload:
        raise ProtocolError(f"{what} is missing required field {field!r}")
    value = payload[field]
    if not isinstance(value, types):
        raise ProtocolError(
            f"{what} field {field!r} has invalid type "
            f"{type(value).__name__}"
        )
    return value


def check_version(payload: dict, what: str) -> None:
    """Reject payloads that are not dicts or speak another version."""
    if not isinstance(payload, dict):
        raise ProtocolError(
            f"{what} must be a JSON object, got {type(payload).__name__}"
        )
    version = _require(payload, "protocol_version", int, what)
    if isinstance(version, bool) or version != PROTOCOL_VERSION:
        raise ProtocolError(
            f"{what} speaks protocol version {version!r}; "
            f"this build speaks {PROTOCOL_VERSION}"
        )


def _sql_text(request: Query | str, memo: dict | None = None) -> str:
    if not isinstance(request, Query):
        return request
    if memo is None:
        return request.to_sql()
    # Batches repeat canonical queries; render each distinct Query
    # object once per envelope.
    key = id(request)
    sql = memo.get(key)
    if sql is None:
        sql = memo[key] = request.to_sql()
    return sql


# ----------------------------------------------------------------------
# request envelopes
# ----------------------------------------------------------------------
def estimate_request_to_wire(
    request: Query | str, sketch: str | None = None
) -> dict:
    """Envelope for one estimation request (``POST /v1/estimate``)."""
    return {
        "protocol_version": PROTOCOL_VERSION,
        "sql": _sql_text(request),
        "sketch": sketch,
    }


def estimate_request_from_wire(payload: dict) -> tuple[str, str | None]:
    """Validate a request envelope; returns ``(sql, pinned sketch)``."""
    what = "estimate request"
    check_version(payload, what)
    sql = _require(payload, "sql", str, what)
    sketch = payload.get("sketch")
    if sketch is not None and not isinstance(sketch, str):
        raise ProtocolError(f"{what} field 'sketch' must be a string or null")
    return sql, sketch


def batch_request_to_wire(
    requests: Sequence[Query | str], sketch: str | None = None
) -> dict:
    """Envelope for a batch request (``POST /v1/estimate_batch``)."""
    memo: dict = {}
    return {
        "protocol_version": PROTOCOL_VERSION,
        "queries": [_sql_text(r, memo) for r in requests],
        "sketch": sketch,
    }


def batch_request_from_wire(payload: dict) -> tuple[list[str], str | None]:
    """Validate a batch envelope; returns ``(sql list, pinned sketch)``."""
    what = "estimate_batch request"
    check_version(payload, what)
    queries = _require(payload, "queries", list, what)
    for i, sql in enumerate(queries):
        if not isinstance(sql, str):
            raise ProtocolError(
                f"{what} queries[{i}] must be a string, "
                f"got {type(sql).__name__}"
            )
    sketch = payload.get("sketch")
    if sketch is not None and not isinstance(sketch, str):
        raise ProtocolError(f"{what} field 'sketch' must be a string or null")
    return list(queries), sketch


# ----------------------------------------------------------------------
# response envelopes
# ----------------------------------------------------------------------
def response_to_wire(
    response: EstimateResponse,
    server_ms: float | None = None,
    *,
    sql_memo: dict | None = None,
) -> dict:
    """Serialize one :class:`EstimateResponse` (all outcome classes)."""
    return {
        "protocol_version": PROTOCOL_VERSION,
        "ok": response.ok,
        "request": _sql_text(response.request, sql_memo),
        "request_kind": (
            _KIND_QUERY if isinstance(response.request, Query) else _KIND_SQL
        ),
        "query": (
            None
            if response.query is None
            else _sql_text(response.query, sql_memo)
        ),
        "sketch": response.sketch,
        "estimate": response.estimate,
        "cached": response.cached,
        "error": response.error,
        "code": response.code,
        "token": response.token,
        "server_ms": server_ms,
    }


def _parse_memo(sql: str, memo: dict | None):
    from ..db.sql import parse_sql

    if memo is None:
        return parse_sql(sql)
    query = memo.get(sql)
    if query is None:
        query = memo[sql] = parse_sql(sql)
    return query


def response_from_wire(
    payload: dict, *, parse_cache: dict | None = None
) -> EstimateResponse:
    """Reconstruct the exact :class:`EstimateResponse` a server produced.

    ``parse_sql(to_sql(q)) == q`` makes the query fields lossless; the
    ``server_ms`` timing is envelope metadata, not a response field
    (read it from the payload directly if you need it).  ``parse_cache``
    memoizes ``parse_sql`` per distinct SQL string — batches repeat
    canonical queries, and re-parsing them dominates unmarshalling.
    """
    what = "estimate response"
    check_version(payload, what)
    kind = _require(payload, "request_kind", str, what)
    if kind not in (_KIND_SQL, _KIND_QUERY):
        raise ProtocolError(f"{what} has unknown request_kind {kind!r}")
    request_sql = _require(payload, "request", str, what)
    query_sql = payload.get("query")
    if query_sql is not None and not isinstance(query_sql, str):
        raise ProtocolError(f"{what} field 'query' must be a string or null")
    estimate = payload.get("estimate")
    if estimate is not None and not isinstance(estimate, (int, float)):
        raise ProtocolError(f"{what} field 'estimate' must be a number or null")
    error = payload.get("error")
    if error is not None and not isinstance(error, str):
        raise ProtocolError(f"{what} field 'error' must be a string or null")
    code = payload.get("code")
    if code is not None and code not in RESPONSE_CODES:
        raise ProtocolError(f"{what} has unknown error code {code!r}")
    if error is None and code is not None:
        raise ProtocolError(f"{what} carries code {code!r} without an error")
    sketch = payload.get("sketch")
    if sketch is not None and not isinstance(sketch, str):
        raise ProtocolError(f"{what} field 'sketch' must be a string or null")
    token = payload.get("token")
    if token is not None and (isinstance(token, bool) or not isinstance(token, int)):
        raise ProtocolError(f"{what} field 'token' must be an integer or null")
    try:
        query = (
            None if query_sql is None else _parse_memo(query_sql, parse_cache)
        )
        request: Query | str = (
            _parse_memo(request_sql, parse_cache)
            if kind == _KIND_QUERY
            else request_sql
        )
    except Exception as exc:
        raise ProtocolError(f"{what} carries unparseable SQL: {exc}") from exc
    return EstimateResponse(
        request=request,
        query=query,
        sketch=sketch,
        estimate=None if estimate is None else float(estimate),
        cached=bool(payload.get("cached", False)),
        error=error,
        code=code,
        token=token,
    )


def batch_response_to_wire(
    responses: Sequence[EstimateResponse], server_ms: float | None = None
) -> dict:
    """Envelope for a batch of responses (one ``server_ms`` for all)."""
    memo: dict = {}
    return {
        "protocol_version": PROTOCOL_VERSION,
        "responses": [response_to_wire(r, sql_memo=memo) for r in responses],
        "server_ms": server_ms,
    }


def batch_response_from_wire(payload: dict) -> list[EstimateResponse]:
    what = "estimate_batch response"
    check_version(payload, what)
    responses = _require(payload, "responses", list, what)
    parse_cache: dict = {}
    return [
        response_from_wire(item, parse_cache=parse_cache)
        for item in responses
    ]


# ----------------------------------------------------------------------
# plan advisory envelopes (POST /v1/plan) — additive wire v1
# ----------------------------------------------------------------------
def plan_request_to_wire(request: Query | str, sketch: str | None = None) -> dict:
    """Envelope for one plan advisory request (``POST /v1/plan``).

    Same shape as an estimate request: one SQL text plus an optional
    pinned sketch (``null`` routes every subplan to its narrowest
    cover).
    """
    return {
        "protocol_version": PROTOCOL_VERSION,
        "sql": _sql_text(request),
        "sketch": sketch,
    }


def plan_request_from_wire(payload: dict) -> tuple[str, str | None]:
    """Validate a plan request envelope; returns ``(sql, pinned sketch)``."""
    what = "plan request"
    check_version(payload, what)
    sql = _require(payload, "sql", str, what)
    sketch = payload.get("sketch")
    if sketch is not None and not isinstance(sketch, str):
        raise ProtocolError(f"{what} field 'sketch' must be a string or null")
    return sql, sketch


def _plan_node_to_wire(node):
    """A join tree as nested JSON: leaves are alias strings, joins are
    two-element ``[left, right]`` lists."""
    from ..optimizer.plans import JoinNode

    if isinstance(node, JoinNode):
        return [_plan_node_to_wire(node.left), _plan_node_to_wire(node.right)]
    return node.alias


def _plan_node_from_wire(obj, what: str):
    from ..optimizer.plans import JoinNode, LeafNode

    if isinstance(obj, str):
        return LeafNode(obj)
    if isinstance(obj, list) and len(obj) == 2:
        return JoinNode(
            _plan_node_from_wire(obj[0], what),
            _plan_node_from_wire(obj[1], what),
        )
    raise ProtocolError(
        f"{what} plan nodes must be alias strings or [left, right] "
        f"pairs, got {type(obj).__name__}"
    )


def _optional_number(payload: dict, field: str, what: str) -> float | None:
    value = payload.get(field)
    if value is None:
        return None
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ProtocolError(f"{what} field {field!r} must be a number or null")
    return float(value)


def plan_response_to_wire(response, server_ms: float | None = None) -> dict:
    """Serialize one :class:`~repro.serve.plan.PlanResponse`.

    Exact round-trip identity holds
    (``plan_response_from_wire(plan_response_to_wire(r)) == r``): the
    join tree, every subplan estimate, and the f64 timings reconstruct
    precisely.  ``server_ms`` is envelope metadata, as on the estimate
    envelopes.
    """
    return {
        "protocol_version": PROTOCOL_VERSION,
        "ok": response.ok,
        "request": _sql_text(response.request),
        "request_kind": (
            _KIND_QUERY if isinstance(response.request, Query) else _KIND_SQL
        ),
        "query": None if response.query is None else _sql_text(response.query),
        "sketch": response.sketch,
        "plan": (
            None if response.plan is None else _plan_node_to_wire(response.plan)
        ),
        "estimated_cost": response.estimated_cost,
        "subplans": [
            {
                "aliases": list(s.aliases),
                "estimate": s.estimate,
                "cached": s.cached,
                "degraded": s.degraded,
                "code": s.code,
                "error": s.error,
            }
            for s in response.subplans
        ],
        "error": response.error,
        "code": response.code,
        "estimate_ms": response.estimate_ms,
        "enumerate_ms": response.enumerate_ms,
        "server_ms": server_ms,
    }


def _subplan_from_wire(item, what: str):
    from .plan import SubplanEstimate

    if not isinstance(item, dict):
        raise ProtocolError(
            f"{what} subplans must be objects, got {type(item).__name__}"
        )
    aliases = _require(item, "aliases", list, what)
    for alias in aliases:
        if not isinstance(alias, str):
            raise ProtocolError(f"{what} subplan aliases must be strings")
    estimate = _require(item, "estimate", (int, float), what)
    if isinstance(estimate, bool):
        raise ProtocolError(f"{what} field 'estimate' must be a number")
    code = item.get("code")
    if code is not None and code not in RESPONSE_CODES:
        raise ProtocolError(f"{what} subplan has unknown error code {code!r}")
    error = item.get("error")
    if error is not None and not isinstance(error, str):
        raise ProtocolError(f"{what} subplan 'error' must be a string or null")
    degraded = bool(item.get("degraded", False))
    if degraded != (code is not None):
        raise ProtocolError(
            f"{what} subplan degradation and its code disagree"
        )
    return SubplanEstimate(
        aliases=tuple(aliases),
        estimate=float(estimate),
        cached=bool(item.get("cached", False)),
        degraded=degraded,
        code=code,
        error=error,
    )


def plan_response_from_wire(payload: dict):
    """Reconstruct the exact :class:`~repro.serve.plan.PlanResponse`."""
    from .plan import PLAN_RESPONSE_CODES, PlanResponse

    what = "plan response"
    check_version(payload, what)
    kind = _require(payload, "request_kind", str, what)
    if kind not in (_KIND_SQL, _KIND_QUERY):
        raise ProtocolError(f"{what} has unknown request_kind {kind!r}")
    request_sql = _require(payload, "request", str, what)
    query_sql = payload.get("query")
    if query_sql is not None and not isinstance(query_sql, str):
        raise ProtocolError(f"{what} field 'query' must be a string or null")
    error = payload.get("error")
    if error is not None and not isinstance(error, str):
        raise ProtocolError(f"{what} field 'error' must be a string or null")
    code = payload.get("code")
    if code is not None and code not in PLAN_RESPONSE_CODES:
        raise ProtocolError(f"{what} has unknown error code {code!r}")
    if error is None and code is not None:
        raise ProtocolError(f"{what} carries code {code!r} without an error")
    sketch = payload.get("sketch")
    if sketch is not None and not isinstance(sketch, str):
        raise ProtocolError(f"{what} field 'sketch' must be a string or null")
    estimated_cost = _optional_number(payload, "estimated_cost", what)
    plan_obj = payload.get("plan")
    if (plan_obj is None) != (error is not None):
        raise ProtocolError(
            f"{what} must carry exactly one of a plan or an error"
        )
    subplans = payload.get("subplans", [])
    if not isinstance(subplans, list):
        raise ProtocolError(f"{what} field 'subplans' must be a list")
    try:
        query = None if query_sql is None else _parse_memo(query_sql, None)
        request: Query | str = (
            _parse_memo(request_sql, None) if kind == _KIND_QUERY else request_sql
        )
    except Exception as exc:
        raise ProtocolError(f"{what} carries unparseable SQL: {exc}") from exc
    return PlanResponse(
        request=request,
        query=query,
        sketch=sketch,
        plan=None if plan_obj is None else _plan_node_from_wire(plan_obj, what),
        estimated_cost=estimated_cost,
        subplans=tuple(_subplan_from_wire(item, what) for item in subplans),
        error=error,
        code=code,
        estimate_ms=_optional_number(payload, "estimate_ms", what),
        enumerate_ms=_optional_number(payload, "enumerate_ms", what),
    )


# ----------------------------------------------------------------------
# transport-level errors (HTTP 4xx/5xx bodies)
# ----------------------------------------------------------------------
def error_to_wire(message: str, code: str = "protocol") -> dict:
    """Body of a non-2xx HTTP answer (bad envelope, unknown path, ...).

    Distinct from a *request* failure: a malformed payload has no
    request to attach an :class:`EstimateResponse` to, so the transport
    itself answers with this minimal envelope.
    """
    return {
        "protocol_version": PROTOCOL_VERSION,
        "ok": False,
        "error": message,
        "code": code,
    }


__all__ = [
    "PROTOCOL_VERSION",
    "batch_request_from_wire",
    "batch_request_to_wire",
    "batch_response_from_wire",
    "batch_response_to_wire",
    "check_version",
    "error_to_wire",
    "estimate_request_from_wire",
    "estimate_request_to_wire",
    "plan_request_from_wire",
    "plan_request_to_wire",
    "plan_response_from_wire",
    "plan_response_to_wire",
    "response_from_wire",
    "response_to_wire",
]

"""Shared-memory sketch snapshots: workers map weights, never copy them.

The pickle path ships every :class:`~repro.core.sketch.SketchSnapshot`
into every process-pool worker as a private copy — N workers hold N
full replicas of every weight matrix and sample column.  This module
replaces the copy with a mapping: the parent packs all of a snapshot's
arrays into **one** :class:`multiprocessing.shared_memory.SharedMemory`
segment, and each worker reconstructs the snapshot as read-only numpy
views over the mapped buffer.  The arrays workers compute with *are*
the parent's bytes — per-worker snapshot cost drops to page tables, and
estimates are bit-identical to the pickle path because the arithmetic
runs over the very same values.

Layout: one segment per snapshot.  Arrays (session weights via
:meth:`InferenceSession.export_weights` plus the sample columns from
``samples_to_payload``) are packed back-to-back at 64-byte-aligned
offsets; everything non-array (name, token, dtype header, featurizer
and sample manifests, metadata, the offset/dtype/shape table) travels
in a small picklable :class:`SegmentDescriptor` — a few KB, vs the
megabytes it replaces.

Lifecycle — the part that has to be exact (see ``docs/performance.md``):

* The **parent owns every segment**.  :meth:`SnapshotSegment.publish`
  creates it, copies the arrays in once, and registers it in a
  module-level live-segment registry; :meth:`SnapshotSegment.unlink`
  removes the ``/dev/shm`` entry and deregisters.  The executor ties
  this to ``snapshot_token``: a hot swap publishes the new version's
  segment, rebuilds the pool, and only then unlinks the retired one —
  workers still mapping an unlinked segment keep a valid mapping until
  they close it (POSIX semantics), so PR 8's zero-stale barrier is
  unaffected.
* CPython 3.11's ``resource_tracker`` registers *every* attach for
  cleanup, so a dying worker's tracker would unlink segments the
  parent still serves from.  Both sides therefore deregister
  immediately (:func:`_untrack`); ownership is explicit instead.
* Safety nets for ungraceful exits: an ``atexit`` hook unlinks
  anything left in the registry, and :func:`live_segment_names` lets
  tests and the lifecycle bench assert the registry (and ``/dev/shm``)
  drained to empty.
"""

from __future__ import annotations

import atexit
import os
import threading
import uuid
from dataclasses import dataclass
from multiprocessing.shared_memory import SharedMemory

import numpy as np

from ..core.sketch import DeepSketch, SketchSnapshot
from ..errors import SketchError
from ..core.featurization import Featurizer
from ..nn.inference import InferenceSession
from ..sampling.sampler import samples_from_payload

#: Prefix for every segment this module creates — lets tests (and
#: operators) pick our entries out of ``/dev/shm`` unambiguously.
SEGMENT_PREFIX = "sketchshm"

#: Array offsets are rounded up to this alignment so every mapped view
#: starts on a cache-line boundary (also satisfies any dtype's
#: alignment requirement).
ALIGN = 64

_registry_lock = threading.Lock()
_live_segments: dict[str, "SnapshotSegment"] = {}


def _unlink_shm(shm: SharedMemory) -> None:
    """Remove the segment's name without touching the resource tracker.

    ``SharedMemory.unlink`` pairs the OS unlink with a tracker
    ``unregister`` — but :func:`_untrack` already deregistered at
    create/attach time, so that extra message would be unmatched and
    the tracker process prints a KeyError traceback.  Go straight to
    ``shm_unlink`` instead (fall back to the stdlib call on platforms
    without the posix module, where no tracker is involved anyway).
    """
    try:
        import _posixshmem

        _posixshmem.shm_unlink(shm._name)
    except ImportError:  # pragma: no cover - non-posix platforms
        shm.unlink()
    except FileNotFoundError:  # pragma: no cover - already gone
        pass


def _untrack(shm: SharedMemory) -> None:
    """Opt this handle out of resource_tracker-managed cleanup.

    Python 3.11 registers shared memory with the tracker on *every*
    ``SharedMemory()`` construction (create and attach alike), and the
    tracker unlinks registered names when its process exits.  With
    worker processes attaching and dying freely, that default would let
    a crashed worker delete segments the parent still serves from.  We
    deregister on both sides and make the parent the explicit owner.
    """
    try:  # pragma: no cover - defensive: private API shape varies
        from multiprocessing import resource_tracker

        resource_tracker.unregister(shm._name, "shared_memory")
    except Exception:
        pass


def live_segment_names() -> set[str]:
    """Names of segments this process has published and not yet unlinked."""
    with _registry_lock:
        return set(_live_segments)


def _cleanup_at_exit() -> None:  # pragma: no cover - interpreter teardown
    for segment in list(_live_segments.values()):
        segment.unlink()


atexit.register(_cleanup_at_exit)


def _aligned(offset: int) -> int:
    return (offset + ALIGN - 1) // ALIGN * ALIGN


@dataclass(frozen=True)
class SegmentDescriptor:
    """The picklable half of a published segment.

    Everything a worker needs to rebuild the snapshot: the ``/dev/shm``
    name, the array table (key -> ``{"offset", "dtype", "shape"}``),
    and the snapshot's non-array fields.  A few KB regardless of model
    or sample size — this is what crosses the process boundary instead
    of the arrays.
    """

    shm_name: str
    arrays: dict
    session_header: dict
    name: str
    token: int
    inference_dtype: str
    featurizer_manifest: dict
    sample_manifest: dict
    metadata: dict

    def nbytes(self) -> int:
        """Total payload bytes the mapped arrays cover."""
        total = 0
        for spec in self.arrays.values():
            total += int(
                np.dtype(spec["dtype"]).itemsize
                * int(np.prod(spec["shape"], dtype=np.int64))
            )
        return total


class SnapshotSegment:
    """A parent-owned shared-memory segment holding one snapshot."""

    def __init__(self, shm: SharedMemory, descriptor: SegmentDescriptor):
        self._shm = shm
        self.descriptor = descriptor
        self._unlinked = False

    # ------------------------------------------------------------------
    # parent side
    # ------------------------------------------------------------------
    @classmethod
    def publish(cls, snapshot: SketchSnapshot) -> "SnapshotSegment":
        """Pack ``snapshot``'s arrays into a fresh segment (one copy, here).

        This is the *only* copy on the shared-memory path; every worker
        attach after this is a mapping.
        """
        weight_arrays, session_header = snapshot.session.export_weights()
        all_arrays: dict[str, np.ndarray] = dict(weight_arrays)
        for key, array in snapshot.sample_arrays.items():
            if key in all_arrays:
                raise SketchError(
                    f"snapshot {snapshot.name!r} array key collision: {key!r}"
                )
            all_arrays[key] = np.asarray(array)

        table: dict[str, dict] = {}
        offset = 0
        for key, array in all_arrays.items():
            offset = _aligned(offset)
            table[key] = {
                "offset": offset,
                "dtype": array.dtype.str,
                "shape": list(array.shape),
            }
            offset += array.nbytes

        shm_name = (
            f"{SEGMENT_PREFIX}_{os.getpid()}_{snapshot.token}_"
            f"{uuid.uuid4().hex[:8]}"
        )
        shm = SharedMemory(name=shm_name, create=True, size=max(offset, 1))
        _untrack(shm)
        try:
            for key, array in all_arrays.items():
                spec = table[key]
                dest = np.ndarray(
                    array.shape,
                    dtype=array.dtype,
                    buffer=shm.buf,
                    offset=spec["offset"],
                )
                dest[...] = array
        except Exception:
            shm.close()
            try:
                _unlink_shm(shm)
            except OSError:  # pragma: no cover - already gone
                pass
            raise

        descriptor = SegmentDescriptor(
            shm_name=shm_name,
            arrays=table,
            session_header=session_header,
            name=snapshot.name,
            token=snapshot.token,
            inference_dtype=snapshot.inference_dtype,
            featurizer_manifest=snapshot.featurizer_manifest,
            sample_manifest=snapshot.sample_manifest,
            metadata=dict(snapshot.metadata),
        )
        segment = cls(shm, descriptor)
        with _registry_lock:
            _live_segments[shm_name] = segment
        return segment

    @property
    def name(self) -> str:
        return self.descriptor.shm_name

    @property
    def token(self) -> int:
        return self.descriptor.token

    def unlink(self) -> None:
        """Remove the ``/dev/shm`` entry and deregister (idempotent).

        Workers still mapping the segment keep a valid mapping until
        they drop it — unlink only prevents *new* attaches, which is
        exactly the hot-swap retirement semantic.
        """
        if self._unlinked:
            return
        self._unlinked = True
        with _registry_lock:
            _live_segments.pop(self.descriptor.shm_name, None)
        try:
            self._shm.close()
        except BufferError:  # pragma: no cover - parent-side views alive
            pass
        try:
            _unlink_shm(self._shm)
        except OSError:  # pragma: no cover - already gone
            pass

    def __repr__(self) -> str:
        state = "unlinked" if self._unlinked else "live"
        return (
            f"SnapshotSegment({self.descriptor.shm_name!r}, "
            f"sketch={self.descriptor.name!r}, token={self.token}, {state})"
        )


# ----------------------------------------------------------------------
# worker side
# ----------------------------------------------------------------------
class AttachedSnapshot:
    """A worker's zero-copy view of a published snapshot.

    Holds the mapped :class:`SharedMemory` handle alive for as long as
    the restored sketch is in service; :meth:`detach` drops the views
    and closes the mapping (the parent still owns the unlink).
    """

    def __init__(self, descriptor: SegmentDescriptor):
        try:
            shm = SharedMemory(name=descriptor.shm_name)
        except FileNotFoundError as exc:
            raise SketchError(
                f"shared-memory segment {descriptor.shm_name!r} for sketch "
                f"{descriptor.name!r} is gone (retired before attach?)"
            ) from exc
        _untrack(shm)
        self._shm = shm
        self.descriptor = descriptor

        arrays: dict[str, np.ndarray] = {}
        for key, spec in descriptor.arrays.items():
            view = np.ndarray(
                tuple(spec["shape"]),
                dtype=np.dtype(spec["dtype"]),
                buffer=shm.buf,
                offset=int(spec["offset"]),
            )
            view.flags.writeable = False
            arrays[key] = view

        weights = {
            key: view
            for key, view in arrays.items()
            if key.startswith("weights.")
        }
        session = InferenceSession.from_weights(
            weights, descriptor.session_header
        )
        sample_arrays = {
            key: view
            for key, view in arrays.items()
            if key.startswith("sample.")
        }
        sketch = DeepSketch(
            name=descriptor.name,
            featurizer=Featurizer.from_manifest(descriptor.featurizer_manifest),
            model=None,
            samples=samples_from_payload(
                sample_arrays, descriptor.sample_manifest
            ),
            metadata=dict(descriptor.metadata),
            inference_dtype=descriptor.inference_dtype,
        )
        sketch._session = session
        self.sketch = sketch
        self.token = descriptor.token

    def detach(self) -> None:
        """Drop the mapping (best-effort; views may pin it until GC)."""
        self.sketch = None
        try:
            self._shm.close()
        except BufferError:
            # numpy views still reference the buffer; the mapping is
            # released when they are collected.
            pass


__all__ = [
    "ALIGN",
    "AttachedSnapshot",
    "SEGMENT_PREFIX",
    "SegmentDescriptor",
    "SnapshotSegment",
    "live_segment_names",
]

"""Asynchronous, latency-bounded sketch serving.

:class:`repro.serve.server.SketchServer` batches well but only flushes
when a caller blocks on ``serve``/``flush`` — fine for offline streams,
wrong for live traffic where many independent clients each hold one
request and nobody sees the whole stream.  :class:`AsyncSketchServer`
closes that gap:

* ``submit()`` is thread-safe and returns a
  :class:`concurrent.futures.Future` immediately; any number of client
  threads can submit concurrently.  ``submit_async()`` is the
  ``asyncio`` front-end (awaitable from an event loop).
* Requests are parsed and routed on the submitting thread, then
  buffered **per sketch**.  A background flush loop drains each buffer
  under a dual trigger: the buffer reaches
  ``AsyncServeConfig.max_batch_size`` (flush now, full batch) **or**
  the oldest buffered request has waited ``max_wait_ms`` (flush now,
  partial batch).  Queueing delay is therefore bounded by
  ``max_wait_ms`` regardless of load, while one model forward pass is
  shared by every request in the flushed batch.  An opportunistic
  third trigger (``min_idle_ms``) flushes a buffer as soon as arrivals
  quiesce, so a burst never waits out a deadline that cannot add batch
  members; under sustained load it never fires.
* **Cross-sketch deduplication**: identical canonical queries in
  flight at the same time collapse onto a single pending computation —
  every waiter receives the *same* future, which resolves once with
  the *same* response object.  "Cross-sketch" describes where the map
  lives: one map above all per-sketch buffers, keyed by
  ``(sketch, canonical query)`` — requests answered by different
  sketches are different computations and never merge.
* A shared template-keyed :class:`~repro.serve.feature_cache.FeatureCache`
  persists structure feature rows across flushes and across sketches,
  so templated workloads ("same query, different constants") only
  recompute predicate literal slots and sample bitmaps.
* Estimate-cache hits are answered directly on the submitting thread
  (a read-only ``peek``; only the flush thread ever writes a sketch's
  result cache) — a repeated query never waits for a batch at all.

Numerical behavior is identical to the synchronous paths: the flush
loop answers batches through the same
:func:`repro.serve.server.answer_chunk` pipeline — and therefore
through each sketch's compiled
:class:`~repro.nn.inference.InferenceSession` forward — so estimates
match ``DeepSketch.estimate`` to within the few-ULP BLAS rounding
documented in :mod:`repro.serve.bench`.  Sessions and their buffer
pools are invalidated with the result caches when a sketch is dropped
or rebuilt, and the pools are thread-local, so the flush thread and
direct callers never share scratch memory.

Typical use::

    server = AsyncSketchServer(manager, AsyncServeConfig(max_wait_ms=2.0))
    with server:                        # starts the flush loop
        future = server.submit("SELECT COUNT(*) FROM title t ...")
        response = future.result()      # resolves within ~max_wait_ms
    # leaving the context drains every buffered request, then stops
"""

from __future__ import annotations

import asyncio
import math
import threading
import time
from collections import deque
from concurrent.futures import Future
from dataclasses import dataclass
from typing import Iterable, Sequence

from ..errors import SketchError
from ..workload.query import Query
from ..demo.manager import SketchManager
from .feature_cache import DEFAULT_FEATURE_CACHE_SIZE, FeatureCache
from .server import (
    EstimateResponse,
    ServerStats,
    answer_chunk,
    prepare_request,
)


@dataclass(frozen=True)
class AsyncServeConfig:
    """Knobs of the asynchronous serving loop.

    ``max_batch_size`` and ``max_wait_ms`` form the dual flush trigger:
    a buffer is flushed as soon as it holds ``max_batch_size`` requests
    *or* its oldest request has waited ``max_wait_ms`` milliseconds,
    whichever comes first.  Small ``max_wait_ms`` favors latency, large
    favors batching; ``0`` flushes as fast as the loop can spin.

    ``min_idle_ms`` adds an opportunistic third trigger (the shape used
    by production dynamic batchers): a non-empty buffer whose *last*
    arrival is older than ``min_idle_ms`` flushes immediately — the
    burst has quiesced, so waiting out the rest of ``max_wait_ms``
    would add latency without adding batch members.  Under sustained
    arrivals the idle timer never fires and batches still grow to the
    size/deadline bounds; ``None`` disables the trigger for pure
    deadline semantics.

    ``dedup`` merges identical in-flight canonical queries onto one
    computation.  ``feature_cache_size``/``feature_cache_ttl_s`` bound
    the shared template-keyed feature cache (``ttl`` of ``None`` means
    entries only ever leave by LRU eviction).  ``latency_window`` is
    how many recent per-request wait times the server retains for its
    percentile summary.
    """

    max_batch_size: int = 256
    max_wait_ms: float = 2.0
    min_idle_ms: float | None = 1.0
    use_cache: bool = True
    dedup: bool = True
    feature_cache_size: int = DEFAULT_FEATURE_CACHE_SIZE
    feature_cache_ttl_s: float | None = 600.0
    latency_window: int = 8192

    def __post_init__(self):
        if self.max_batch_size <= 0:
            raise SketchError(
                f"max_batch_size must be positive, got {self.max_batch_size}"
            )
        if self.max_wait_ms < 0:
            raise SketchError(f"max_wait_ms must be >= 0, got {self.max_wait_ms}")
        if self.min_idle_ms is not None and self.min_idle_ms < 0:
            raise SketchError(f"min_idle_ms must be >= 0, got {self.min_idle_ms}")
        if self.latency_window <= 0:
            raise SketchError(
                f"latency_window must be positive, got {self.latency_window}"
            )


@dataclass
class AsyncServerStats(ServerStats):
    """Sync counters plus the async loop's flush/dedup accounting."""

    n_deduped: int = 0          # futures merged onto an in-flight twin
    n_fast_cache_hits: int = 0  # answered at submit time from the cache
    n_flushes: int = 0
    n_flushes_full: int = 0     # triggered by max_batch_size
    n_flushes_timed: int = 0    # triggered by max_wait_ms
    n_flushes_idle: int = 0     # triggered by min_idle_ms quiescence
    n_flushes_drain: int = 0    # triggered by shutdown drain


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (``q`` in [0, 1]) of ``values``."""
    if not values:
        return 0.0
    ordered = sorted(values)
    rank = max(int(math.ceil(q * len(ordered))), 1)
    return ordered[rank - 1]


class _Pending:
    """One in-flight computation shared by every deduped waiter.

    All waiters hold the *same* future object — deduplication merges a
    request by handing back the twin's future, so a duplicate costs one
    dict lookup and an increment, with no allocation and no extra
    ``set_result`` at resolve time.
    """

    __slots__ = ("response", "future", "waiters", "enqueued_at")

    def __init__(self, response: EstimateResponse, enqueued_at: float):
        self.response = response
        self.future: Future[EstimateResponse] = Future()
        # Move the future to RUNNING immediately so no waiter can
        # cancel() it: the computation is shared, and a cancelled future
        # would make the flush loop's set_result raise InvalidStateError
        # (killing the loop and stranding every other waiter).  An
        # asyncio caller that cancels its await stops waiting without
        # affecting the shared computation (asyncio.wrap_future only
        # cancels its own wrapper once the inner future is running).
        self.future.set_running_or_notify_cancel()
        self.waiters = 1
        self.enqueued_at = enqueued_at


class AsyncSketchServer:
    """Latency-bounded concurrent serving over a :class:`SketchManager`.

    Thread-safety contract: ``submit`` may be called from any number of
    threads; all shared state (buffers, dedup map, stats) is guarded by
    one lock, and sketch result caches are only *written* by the flush
    thread (submitters use a read-only peek), so no cache access races.
    The flush loop is a daemon thread started lazily on first submit
    (or explicitly via :meth:`start`); :meth:`close` — or leaving the
    server's context manager — drains every buffered request before
    stopping, so no accepted future is ever abandoned.
    """

    def __init__(
        self,
        manager: SketchManager,
        config: AsyncServeConfig | None = None,
        feature_cache: FeatureCache | None = None,
    ):
        self.manager = manager
        self.config = config or AsyncServeConfig()
        self.stats = AsyncServerStats()
        self.feature_cache = feature_cache or FeatureCache(
            maxsize=self.config.feature_cache_size,
            ttl_seconds=self.config.feature_cache_ttl_s,
        )
        self._lock = threading.Lock()
        self._cond = threading.Condition(self._lock)
        # sketch name -> FIFO of _Pending awaiting a flush
        self._buffers: dict[str, list[_Pending]] = {}
        # sketch name -> monotonic time of the newest arrival (idle trigger)
        self._last_enqueue: dict[str, float] = {}
        # (sketch name, canonical query) -> its buffered _Pending (dedup)
        self._inflight: dict[tuple[str, Query], _Pending] = {}
        self._waits: deque[float] = deque(maxlen=self.config.latency_window)
        # Fast-path cache hits recorded for the flush thread to replay
        # as real cache.get()s: submitters only peek (read-only), but
        # without a recency touch the hottest repeated queries would age
        # to LRU-oldest and be evicted under cache pressure.  Bounded —
        # dropping old touches only costs recency precision.
        self._touches: deque[tuple[str, Query]] = deque(maxlen=4096)
        self._touches_pending = 0
        self._thread: threading.Thread | None = None
        self._closed = False
        self._last_purge = time.monotonic()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "AsyncSketchServer":
        """Start the background flush loop (idempotent)."""
        with self._lock:
            self._ensure_thread_locked()
        return self

    def _ensure_thread_locked(self) -> None:
        if self._closed:
            raise SketchError("server is closed")
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._run, name="sketch-serve-flush", daemon=True
            )
            self._thread.start()

    def close(self, timeout: float | None = 30.0) -> None:
        """Drain every buffered request, then stop the flush loop.

        Idempotent.  Futures already returned by :meth:`submit` are all
        resolved before the loop exits; ``submit`` calls after close
        raise :class:`~repro.errors.SketchError`.
        """
        with self._cond:
            if self._closed:
                thread = self._thread
            else:
                self._closed = True
                thread = self._thread
                self._cond.notify_all()
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    def __enter__(self) -> "AsyncSketchServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def pending(self) -> int:
        """Buffered requests not yet taken by a flush (dedup'd count)."""
        with self._lock:
            return sum(len(buf) for buf in self._buffers.values())

    # ------------------------------------------------------------------
    # request intake
    # ------------------------------------------------------------------
    def submit(
        self, request: Query | str, sketch: str | None = None
    ) -> "Future[EstimateResponse]":
        """Enqueue one request; resolves within ~``max_wait_ms`` + model time.

        Parsing and routing happen on the calling thread, so malformed
        SQL and uncoverable table sets resolve immediately with an error
        response (never an exception through the future).  A request
        whose estimate is already cached also resolves immediately —
        repeated queries never pay the batching wait.
        """
        response = prepare_request(self.manager, request, sketch)

        if response.ok and self.config.use_cache:
            # Read-only peek: submit threads must not mutate the cache
            # (recency and counters are owned by the flush thread).
            try:
                hit = self.manager.get_sketch(response.sketch).cache.peek(
                    response.query
                )
            except SketchError:
                hit = None  # dropped since routing; the flush will report it
            if hit is not None:
                response.estimate = float(hit)
                response.cached = True
                with self._lock:
                    if self._closed:
                        raise SketchError("server is closed")
                    self.stats.n_requests += 1
                    self.stats.n_answered += 1
                    self.stats.n_cache_hits += 1
                    self.stats.n_fast_cache_hits += 1
                    self._count_sketch_locked(response.sketch)
                    self._waits.append(0.0)
                    self._record_touch_locked(response)
                future: Future[EstimateResponse] = Future()
                future.set_result(response)
                return future

        with self._cond:
            if self._closed:
                raise SketchError("server is closed")
            self._ensure_thread_locked()
            self.stats.n_requests += 1
            if not response.ok:
                self.stats.n_errors += 1
                future = Future()
                future.set_result(response)
                return future
            key = (response.sketch, response.query)
            twin = self._inflight.get(key) if self.config.dedup else None
            if twin is not None:
                # Merge onto the in-flight twin: the caller gets the
                # twin's own future (identical object for all waiters).
                twin.waiters += 1
                self.stats.n_deduped += 1
                return twin.future
            pending = _Pending(response, time.monotonic())
            buffer = self._buffers.setdefault(response.sketch, [])
            buffer.append(pending)
            if self.config.dedup:
                self._inflight[key] = pending
            self._last_enqueue[response.sketch] = pending.enqueued_at
            # Wake the flush loop only when its schedule actually
            # changes: a previously empty buffer needs a deadline, a
            # full one needs an immediate flush.  Intermediate arrivals
            # only push the idle deadline later, which the loop
            # discovers on its own — notifying for each of them would
            # wake it hundreds of times per burst for nothing.
            if len(buffer) == 1 or len(buffer) >= self.config.max_batch_size:
                self._cond.notify_all()
        return pending.future

    def submit_many(
        self, requests: Sequence[Query | str], sketch: str | None = None
    ) -> "list[Future[EstimateResponse]]":
        """Amortized intake: enqueue a whole batch under one lock.

        Semantically identical to calling :meth:`submit` per request,
        but parsing, routing, and cache peeks happen before the lock is
        taken, all buffer/dedup bookkeeping happens inside a single
        critical section, and the flush loop is notified at most once.
        This is the efficient entry point for a client that holds many
        requests (a replayed log, a fan-in gateway).
        """
        prepared: list[tuple[EstimateResponse, float | None]] = []
        for request in requests:
            response = prepare_request(self.manager, request, sketch)
            hit = None
            if response.ok and self.config.use_cache:
                try:
                    hit = self.manager.get_sketch(response.sketch).cache.peek(
                        response.query
                    )
                except SketchError:
                    hit = None
            prepared.append((response, hit))

        futures: list[Future[EstimateResponse]] = []
        resolved: list[tuple[Future, EstimateResponse]] = []
        with self._cond:
            if self._closed:
                raise SketchError("server is closed")
            if prepared:
                self._ensure_thread_locked()
            notify = False
            now = time.monotonic()
            for response, hit in prepared:
                self.stats.n_requests += 1
                if not response.ok:
                    self.stats.n_errors += 1
                    future = Future()
                    resolved.append((future, response))
                    futures.append(future)
                    continue
                if hit is not None:
                    response.estimate = float(hit)
                    response.cached = True
                    self.stats.n_answered += 1
                    self.stats.n_cache_hits += 1
                    self.stats.n_fast_cache_hits += 1
                    self._count_sketch_locked(response.sketch)
                    self._waits.append(0.0)
                    self._record_touch_locked(response)
                    future = Future()
                    resolved.append((future, response))
                    futures.append(future)
                    continue
                key = (response.sketch, response.query)
                twin = self._inflight.get(key) if self.config.dedup else None
                if twin is not None:
                    twin.waiters += 1
                    self.stats.n_deduped += 1
                    futures.append(twin.future)
                    continue
                pending = _Pending(response, now)
                buffer = self._buffers.setdefault(response.sketch, [])
                buffer.append(pending)
                if self.config.dedup:
                    self._inflight[key] = pending
                self._last_enqueue[response.sketch] = now
                if len(buffer) == 1 or len(buffer) >= self.config.max_batch_size:
                    notify = True
                futures.append(pending.future)
            if notify:
                self._cond.notify_all()
        for future, response in resolved:
            future.set_result(response)
        return futures

    async def submit_async(
        self, request: Query | str, sketch: str | None = None
    ) -> EstimateResponse:
        """``asyncio`` front-end: await one request from an event loop."""
        return await asyncio.wrap_future(self.submit(request, sketch))

    def serve(
        self, requests: Iterable[Query | str], sketch: str | None = None
    ) -> list[EstimateResponse]:
        """Submit a stream and block for all responses (submission order)."""
        futures = self.submit_many(list(requests), sketch)
        return [future.result() for future in futures]

    def _count_sketch_locked(self, name: str) -> None:
        self.stats.sketch_requests[name] = self.stats.sketch_requests.get(name, 0) + 1

    def _record_touch_locked(self, response: EstimateResponse) -> None:
        """Queue a fast-path hit for the flush thread's recency replay.

        The loop is woken at most once per batch of touches — a fully
        warm stream would otherwise never wake it and never refresh
        recency at all.
        """
        self._touches.append((response.sketch, response.query))
        self._touches_pending += 1
        if self._touches_pending >= 256:
            self._touches_pending = 0
            self._cond.notify_all()

    def _replay_touches(self) -> None:
        """Flush-thread side: turn queued peeks into real cache gets.

        Only the flush thread mutates sketch caches; replaying the
        submit-time peeks here keeps hot repeated queries at the MRU
        end so cache pressure evicts cold entries, not the hottest.
        """
        with self._lock:
            if not self._touches:
                return
            touches = list(self._touches)
            self._touches.clear()
            self._touches_pending = 0
        for name, query in touches:
            try:
                self.manager.get_sketch(name).cache.get(query)
            except SketchError:
                continue  # sketch dropped since the hit; nothing to touch

    # ------------------------------------------------------------------
    # latency accounting
    # ------------------------------------------------------------------
    def wait_summary(self) -> dict[str, float]:
        """Queueing-wait percentiles (seconds) over the recent window.

        The wait is submit-to-flush-start — the part of latency the
        ``max_wait_ms`` trigger bounds; model time is excluded.  Fast
        cache hits count as zero wait.
        """
        with self._lock:
            waits = list(self._waits)
        return {
            "count": float(len(waits)),
            "p50": percentile(waits, 0.50),
            "p95": percentile(waits, 0.95),
            "p99": percentile(waits, 0.99),
            "max": max(waits) if waits else 0.0,
        }

    # ------------------------------------------------------------------
    # the background flush loop
    # ------------------------------------------------------------------
    def _run(self) -> None:
        while True:
            with self._cond:
                batches = None
                while True:
                    now = time.monotonic()
                    batches = self._take_ready_locked(now)
                    if batches or self._touches:
                        break
                    if self._closed:
                        # Drained: buffers are empty (a closed take
                        # grabs everything), so the loop is done.
                        return
                    timeout = self._next_deadline_locked(now)
                    if timeout is None:
                        self._maybe_purge_feature_cache(now)
                    self._cond.wait(timeout=timeout)
            for name, chunk in batches:
                self._answer(name, chunk)
            self._replay_touches()

    def _maybe_purge_feature_cache(self, now: float) -> None:
        """Reap expired feature-cache entries while the loop is idle.

        Expiry is lazy on lookup, which never fires for entries whose
        featurizer (a dropped/rebuilt sketch's) is gone — their keys are
        never looked up again.  One sweep per TTL while idle keeps such
        orphans from pinning vocabularies and structure rows for the
        server's lifetime.
        """
        ttl = getattr(self.feature_cache, "ttl_seconds", None)
        if ttl is None or now - self._last_purge < ttl:
            return
        self._last_purge = now
        self.feature_cache.purge_expired()

    def _next_deadline_locked(self, now: float) -> float | None:
        """Seconds until some buffer's wait or idle trigger next fires."""
        min_idle_s = (
            None
            if self.config.min_idle_ms is None
            else self.config.min_idle_ms / 1000.0
        )
        deadlines = []
        for name, buffer in self._buffers.items():
            if not buffer:
                continue
            deadline = buffer[0].enqueued_at + self.config.max_wait_ms / 1000.0
            if min_idle_s is not None:
                deadline = min(deadline, self._last_enqueue[name] + min_idle_s)
            deadlines.append(deadline)
        if not deadlines:
            return None
        return max(min(deadlines) - now, 0.0)

    def _take_ready_locked(
        self, now: float
    ) -> list[tuple[str, list[_Pending]]]:
        """Pop every buffer whose flush trigger has fired.

        Taken requests leave the dedup map immediately: a duplicate
        arriving while the batch is being answered becomes a fresh
        pending request (and, with caching on, a cache hit at its own
        submit or flush time) rather than attaching to a computation
        whose futures may already be resolving.
        """
        max_wait_s = self.config.max_wait_ms / 1000.0
        min_idle_s = (
            None
            if self.config.min_idle_ms is None
            else self.config.min_idle_ms / 1000.0
        )
        taken: list[tuple[str, list[_Pending]]] = []
        for name in list(self._buffers):
            buffer = self._buffers[name]
            if not buffer:
                del self._buffers[name]
                self._last_enqueue.pop(name, None)
                continue
            full = len(buffer) >= self.config.max_batch_size
            timed = now - buffer[0].enqueued_at >= max_wait_s
            idle = (
                min_idle_s is not None
                and now - self._last_enqueue[name] >= min_idle_s
            )
            if not (full or timed or idle or self._closed):
                continue
            chunk = buffer[: self.config.max_batch_size]
            remainder = buffer[self.config.max_batch_size :]
            if remainder:
                self._buffers[name] = remainder
            else:
                del self._buffers[name]
                self._last_enqueue.pop(name, None)
            if self.config.dedup:
                for pending in chunk:
                    self._inflight.pop(
                        (pending.response.sketch, pending.response.query), None
                    )
            self.stats.n_flushes += 1
            if full:
                self.stats.n_flushes_full += 1
            elif timed:
                self.stats.n_flushes_timed += 1
            elif idle:
                self.stats.n_flushes_idle += 1
            else:
                self.stats.n_flushes_drain += 1
            for pending in chunk:
                self._waits.append(now - pending.enqueued_at)
            taken.append((name, chunk))
        return taken

    def _answer(self, name: str, chunk: list[_Pending]) -> None:
        """Answer one flushed micro-batch and resolve all its futures."""
        responses = [pending.response for pending in chunk]
        local = ServerStats()
        try:
            sketch = self.manager.get_sketch(name)
        except SketchError as exc:
            # The sketch was dropped between routing and flushing.
            for response in responses:
                response.error = str(exc)
        else:
            try:
                answer_chunk(
                    sketch,
                    responses,
                    use_cache=self.config.use_cache,
                    stats=local,
                    feature_cache=self.feature_cache,
                )
            except Exception as exc:  # never strand a future on a bug
                for response in responses:
                    if response.ok and response.estimate is None:
                        response.error = f"internal serving error: {exc!r}"
        with self._lock:
            self.stats.n_forward_batches += local.n_forward_batches
            self.stats.n_cache_hits += local.n_cache_hits
            for pending in chunk:
                # Count every waiter, not every computation, so
                # n_requests == n_answered + n_errors at quiescence even
                # with dedup merging futures.
                if pending.response.ok:
                    self.stats.n_answered += pending.waiters
                else:
                    self.stats.n_errors += pending.waiters
                self.stats.sketch_requests[name] = (
                    self.stats.sketch_requests.get(name, 0) + pending.waiters
                )
        for pending in chunk:
            pending.future.set_result(pending.response)


__all__ = [
    "AsyncServeConfig",
    "AsyncServerStats",
    "AsyncSketchServer",
    "percentile",
]

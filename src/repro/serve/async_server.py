"""Asynchronous, latency-bounded serving facade over the estimation engine.

One of the three :class:`~repro.serve.service.SketchService`
implementations (with the sync facade and the
:class:`~repro.serve.client.RemoteSketchServer` SDK).
:class:`~repro.serve.server.SketchServer` batches well but only flushes
when a caller asks — fine for offline streams, wrong for live traffic
where many independent clients each hold one request and nobody sees
the whole stream.  :class:`AsyncSketchServer` closes that gap by
driving the same :class:`~repro.serve.engine.EstimationEngine` from a
background flush loop:

* ``submit()`` is thread-safe and returns a
  :class:`concurrent.futures.Future` immediately; any number of client
  threads can submit concurrently.  ``submit_async()`` is the
  ``asyncio`` front-end (awaitable from an event loop), and
  ``submit_many()`` amortizes intake for a client holding a batch.
* The engine buffers requests **per sketch** and the loop flushes each
  buffer under the engine's triggers: full (``max_batch_size``), timed
  (``max_wait_ms``), idle (``min_idle_ms`` quiescence), and drain
  (close).  Queueing delay is bounded by ``max_wait_ms`` regardless of
  load, while one flush is shared by every waiting client.
* **Admission control and deadlines** are engine features and therefore
  apply here exactly as on the sync facade: with ``max_queue_depth``
  set, overload resolves futures *at submit time* with structured
  ``code="shed"`` responses (policy ``"reject"``) or evicts the
  longest-waiting request (``"oldest"``); requests older than
  ``deadline_ms`` at flush time resolve with ``code="deadline"``
  instead of consuming model time.
* **Cross-sketch deduplication** merges identical in-flight canonical
  queries onto a single pending computation — every waiter receives
  the *same* future and the *same* response object — and estimate-cache
  hits are answered directly on the submitting thread (a read-only
  ``peek``; the flush side replays recency), so a repeated query never
  waits for a batch at all.
* The engine's **executor** decides where micro-batches run: inline on
  the flush loop (default), across a thread pool, or across a process
  pool of shipped weight snapshots (see :mod:`repro.serve.executor`).

Numerical behavior is identical to the synchronous facade: both drive
the same engine and the same
:func:`~repro.serve.engine.answer_chunk` pipeline — and therefore each
sketch's compiled :class:`~repro.nn.inference.InferenceSession` — so
estimates match ``DeepSketch.estimate`` to within the few-ULP BLAS
rounding documented in :mod:`repro.serve.bench`.

Typical use::

    server = AsyncSketchServer(manager, AsyncServeConfig(max_wait_ms=2.0))
    with server:                        # starts the flush loop
        future = server.submit("SELECT COUNT(*) FROM title t ...")
        response = future.result()      # resolves within ~max_wait_ms
    # leaving the context drains every buffered request, then stops
"""

from __future__ import annotations

import asyncio
from typing import Iterable, Sequence

from ..metrics import percentile
from ..workload.query import Query
from ..demo.manager import SketchManager
from .engine import EstimationEngine, ServeConfig, ServerStats
from .feature_cache import FeatureCache


class AsyncServeConfig(ServeConfig):
    """Alias of the engine's :class:`~repro.serve.engine.ServeConfig`.

    Kept as a distinct name for readability at async call sites (and
    for source compatibility with pre-engine code); the knobs are the
    engine's — including the executor and admission-control fields that
    used to be out of the async server's reach.

    Migration note: the pre-engine sentinels ``max_wait_ms=0`` ("flush
    as fast as the loop can spin") and ``min_idle_ms=0`` are now
    rejected by validation — use a small positive wait (e.g. ``0.1``)
    for spin-like flushing, and ``min_idle_ms=None`` to disable the
    idle trigger.
    """


class AsyncServerStats(ServerStats):
    """Alias of the engine's :class:`~repro.serve.engine.ServerStats`.

    The flush/dedup counters this subclass used to add now live on the
    unified stats block shared by both facades.
    """


class AsyncSketchServer:
    """Latency-bounded concurrent serving over a :class:`SketchManager`.

    A thin facade: all lifecycle logic lives in the engine.  The flush
    loop is a daemon thread started lazily on first submit (or
    explicitly via :meth:`start`); :meth:`close` — or leaving the
    server's context manager — drains every buffered request before
    stopping, so no accepted future is ever abandoned.

    Telemetry: :attr:`stats` is the raw counter block; :meth:`stats_summary`
    is the engine's one-call snapshot, identical in shape to the sync
    facade's.
    """

    def __init__(
        self,
        manager: SketchManager,
        config: AsyncServeConfig | None = None,
        feature_cache: FeatureCache | None = None,
    ):
        self.engine = EstimationEngine(
            manager, config or AsyncServeConfig(), feature_cache
        )

    # -- engine views ---------------------------------------------------
    @property
    def manager(self) -> SketchManager:
        return self.engine.manager

    @property
    def config(self) -> ServeConfig:
        return self.engine.config

    @property
    def stats(self) -> ServerStats:
        return self.engine.counters

    @property
    def feature_cache(self):
        return self.engine.feature_cache

    def stats_summary(self) -> dict:
        """The engine's one-call telemetry snapshot (both facades share
        this shape; see :meth:`EstimationEngine.stats`)."""
        return self.engine.stats()

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def start(self) -> "AsyncSketchServer":
        """Start the background flush loop (idempotent)."""
        self.engine.start_loop()
        return self

    def close(self, timeout: float | None = 30.0) -> None:
        """Drain every buffered request, then stop the flush loop.

        Idempotent.  Futures already returned by :meth:`submit` are all
        resolved before the loop exits; ``submit`` calls after close
        raise :class:`~repro.errors.SketchError`.
        """
        self.engine.close(timeout)

    def __enter__(self) -> "AsyncSketchServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    @property
    def closed(self) -> bool:
        return self.engine.closed

    @property
    def pending(self) -> int:
        """Buffered requests not yet taken by a flush (dedup'd count)."""
        return self.engine.pending

    # ------------------------------------------------------------------
    # request intake
    # ------------------------------------------------------------------
    def submit(self, request: Query | str, sketch: str | None = None):
        """Enqueue one request; resolves within ~``max_wait_ms`` + model time.

        Parsing and routing happen on the calling thread, so malformed
        SQL resolves immediately with an error response (never an
        exception through the future), as do cache hits (no batching
        wait) and admission-control sheds (structured ``code="shed"``
        responses instead of unbounded queueing).  A parseable request
        with no covering sketch yet is deferred and re-routed at flush
        time (route-at-flush), so late registrations still win.
        """
        return self.engine.submit(request, sketch, ensure_loop=True)

    def submit_many(
        self, requests: Sequence[Query | str], sketch: str | None = None
    ):
        """Amortized intake: enqueue a whole batch under one lock.

        Semantically identical to calling :meth:`submit` per request;
        this is the efficient entry point for a client that holds many
        requests (a replayed log, a fan-in gateway).
        """
        return self.engine.submit_many(list(requests), sketch, ensure_loop=True)

    async def submit_async(self, request: Query | str, sketch: str | None = None):
        """``asyncio`` front-end: await one request from an event loop."""
        return await asyncio.wrap_future(self.submit(request, sketch))

    def estimate(self, request: Query | str, sketch: str | None = None):
        """Blocking one-shot convenience: submit and wait for the
        response (resolves within ~``max_wait_ms`` + model time)."""
        return self.submit(request, sketch).result()

    def serve(
        self, requests: Iterable[Query | str], sketch: str | None = None
    ):
        """Submit a stream and block for all responses (submission order)."""
        futures = self.submit_many(list(requests), sketch)
        return [future.result() for future in futures]

    def plan(self, request: Query | str, sketch: str | None = None):
        """Join-order advice: every connected subplan estimated as one
        ``submit_many`` batch (resolved by the background loop), the
        answers injected into the DP enumerator.  Returns a structured
        :class:`~repro.serve.plan.PlanResponse`."""
        from .plan import plan_query

        return plan_query(self, request, sketch)

    # ------------------------------------------------------------------
    # latency accounting
    # ------------------------------------------------------------------
    def wait_summary(self) -> dict[str, float]:
        """Queueing-wait percentiles (seconds) over the recent window.

        The wait is submit-to-flush-start — the part of latency the
        ``max_wait_ms`` trigger bounds; model time is excluded.  Fast
        cache hits count as zero wait.
        """
        return self.engine.wait_summary()


__all__ = [
    "AsyncServeConfig",
    "AsyncServerStats",
    "AsyncSketchServer",
    "percentile",
]

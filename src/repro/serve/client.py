"""`RemoteSketchServer` — the client SDK of the estimation service.

The third :class:`~repro.serve.service.SketchService` implementation:
the same ``submit`` / ``submit_many`` / ``estimate`` / ``serve`` /
``plan`` / ``stats_summary`` / ``close`` surface as the in-process
facades, spoken
over the versioned wire protocol to a
:class:`~repro.serve.http.SketchHTTPServer`.  Swapping a local facade
for remote serving is a one-line change::

    service = SketchServer(manager)                    # before
    service = RemoteSketchServer("http://host:8080")   # after
    with service:
        response = service.estimate(sql)               # unchanged

Stdlib-only (``http.client`` + ``socket``), deliberately: the SDK must
import anywhere the library does.

Transports.  The SDK speaks two, over the same protocol v1 envelopes:

* **JSON/HTTP** (:mod:`repro.serve.protocol`) — the compatibility
  transport and the control surface (``stats_summary``/``healthz`` are
  always JSON).  Connections are **keep-alive**: a small pool of
  ``http.client`` connections is reused across round trips instead of
  the connect-per-request behavior this SDK used to have — at
  micro-benchmark request sizes the TCP handshake *was* a measurable
  slice of the ~1.2ms/request JSON overhead.  :attr:`connections_opened`
  counts real TCP connects so the transport bench can gate the
  regression.
* **Binary frames** (:mod:`repro.serve.wire`) — the fast path: one
  persistent socket per client slot, length-prefixed struct-packed
  frames, no HTTP parsing, no JSON.  Negotiated, never assumed: the
  first estimate fetches ``/v1/healthz`` and switches to binary only if
  the server advertises ``transports.binary`` at this build's
  :data:`~repro.serve.wire.WIRE_VERSION` (``transport="json"`` /
  ``"binary"`` pin the choice; default ``"auto"``).  Servers without
  the capability — or version-skewed ones — keep speaking JSON.

Semantics worth knowing:

* **Responses are values, never exceptions.**  Request-level failures
  (parse/route/vocab/shed/deadline) arrive as ``ok=False``
  :class:`~repro.serve.engine.EstimateResponse` objects with the same
  structured ``code`` a local caller would see — identical dispatch
  code on both sides of the wire, identical on both transports.  Only
  *transport* failures (connection refused, truncated frame, version
  skew) raise — :class:`~repro.errors.RemoteServerError` or
  :class:`~repro.errors.ProtocolError`.
* **submit() is non-blocking.**  A small thread pool issues the round
  trip and resolves the returned future; ``submit_many`` sends the
  whole batch as **one** round trip (one server-side amortized intake)
  and fans the batch response out to per-request futures.
* **Batching still happens server-side.**  Concurrent ``submit`` calls
  from many client processes coalesce in the server's engine exactly
  like concurrent in-process submitters; the SDK adds no client-side
  waiting.
* ``server_ms`` timings from response envelopes are accumulated into
  :meth:`timings` so callers can split wire overhead from serving time
  (the transport benchmark does).
"""

from __future__ import annotations

import http.client
import json
import socket
import threading
import urllib.parse
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Iterable, Sequence

from ..errors import (
    ProtocolError,
    RemoteConnectionError,
    RemoteHTTPError,
    RemoteServerError,
    RemoteTimeoutError,
)
from ..metrics import LatencySummary
from ..workload.query import Query
from .engine import EstimateResponse
from .plan import PlanResponse
from . import protocol, wire

#: ``transport=`` choices: negotiate, or pin either transport.
TRANSPORTS = ("auto", "json", "binary")


class _HTTPPool:
    """A free-list of keep-alive ``http.client`` connections.

    ``acquire`` hands back an idle connection (or dials a new one —
    counted in ``opened``); ``release`` returns it for reuse;
    ``discard`` drops it (fault, or the server announced close).  The
    pool never blocks: bursts beyond the idle supply just dial more.
    """

    def __init__(self, scheme: str, host: str, port: int, timeout: float):
        self._factory = (
            http.client.HTTPSConnection
            if scheme == "https"
            else http.client.HTTPConnection
        )
        self._host, self._port, self._timeout = host, port, timeout
        self._free: list = []
        self._lock = threading.Lock()
        self.opened = 0

    def acquire(self):
        """-> (connection, reused) — ``reused`` drives stale-retry."""
        with self._lock:
            if self._free:
                return self._free.pop(), True
            self.opened += 1
        return self._factory(self._host, self._port, timeout=self._timeout), False

    def release(self, conn) -> None:
        with self._lock:
            self._free.append(conn)

    def discard(self, conn) -> None:
        try:
            conn.close()
        except OSError:  # pragma: no cover - close is best-effort
            pass

    def close_all(self) -> None:
        with self._lock:
            free, self._free = self._free, []
        for conn in free:
            self.discard(conn)


class _SocketPool:
    """Same free-list discipline for raw binary-frame sockets."""

    def __init__(self, host: str, port: int, timeout: float):
        self._addr = (host, port)
        self._timeout = timeout
        self._free: list = []
        self._lock = threading.Lock()
        self.opened = 0

    def acquire(self):
        with self._lock:
            if self._free:
                return self._free.pop(), True
            self.opened += 1
        sock = socket.create_connection(self._addr, timeout=self._timeout)
        sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        return sock, False

    def release(self, sock) -> None:
        with self._lock:
            self._free.append(sock)

    def discard(self, sock) -> None:
        try:
            sock.close()
        except OSError:  # pragma: no cover
            pass

    def close_all(self) -> None:
        with self._lock:
            free, self._free = self._free, []
        for sock in free:
            self.discard(sock)


class RemoteSketchServer:
    """Estimation over the wire, behind the one `SketchService` surface.

    ``url`` is the front door's base address (``http://host:port``);
    ``timeout`` bounds each round trip (seconds);
    ``connection_workers`` sizes the thread pool that makes
    :meth:`submit` non-blocking (it does not limit the server's
    concurrency, only this client's in-flight round trips).
    ``transport`` is ``"auto"`` (negotiate binary via ``/v1/healthz``,
    fall back to JSON), ``"json"``, or ``"binary"`` (fail if the server
    doesn't offer it).

    The client is thread-safe: any number of caller threads may
    submit/estimate concurrently (each concurrent round trip uses its
    own pooled connection).
    """

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 30.0,
        connection_workers: int = 4,
        transport: str = "auto",
    ):
        if not url.startswith(("http://", "https://")):
            raise RemoteServerError(
                f"url must start with http:// or https://, got {url!r}"
            )
        self.url = url.rstrip("/")
        self.timeout = float(timeout)
        if self.timeout <= 0:
            raise RemoteServerError(
                f"timeout must be positive, got {timeout!r}"
            )
        if connection_workers <= 0:
            raise RemoteServerError(
                f"connection_workers must be positive, got {connection_workers!r}"
            )
        if transport not in TRANSPORTS:
            raise RemoteServerError(
                f"unknown transport {transport!r}; "
                f"choose one of {', '.join(TRANSPORTS)}"
            )
        parts = urllib.parse.urlsplit(self.url)
        self._base_path = parts.path.rstrip("/")
        self._http_pool = _HTTPPool(
            parts.scheme,
            parts.hostname or "127.0.0.1",
            parts.port or (443 if parts.scheme == "https" else 80),
            self.timeout,
        )
        self.transport = transport
        self._active: str | None = "json" if transport == "json" else None
        self._binary_pool: _SocketPool | None = None
        self._workers = int(connection_workers)
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._negotiate_lock = threading.Lock()
        self._plan_capable: bool | None = None
        self._closed = False
        #: Client-observed round-trip latency (seconds) per request.
        self.wire_latency = LatencySummary(window=8192)
        #: Server-reported handling time (seconds) per round trip.
        self.server_latency = LatencySummary(window=8192)

    # ------------------------------------------------------------------
    # JSON/HTTP transport (keep-alive)
    # ------------------------------------------------------------------
    def _http(self, method: str, path: str, payload: dict | None = None) -> dict:
        """One JSON round trip on a pooled keep-alive connection.

        Structured 4xx/5xx bodies raise typed errors, transport faults
        raise RemoteServerError.  A *reused* connection that turns out
        stale (the server closed it while idle) is retried once on a
        fresh dial — estimates are idempotent, and a stale keep-alive
        connection is an artifact of pooling, not a server fault.
        """
        if self._closed:
            raise RemoteServerError("client is closed")
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        retried = False
        while True:
            conn, reused = self._acquire_http(method, path)
            try:
                conn.request(
                    method,
                    self._base_path + path,
                    body=body,
                    headers={"Content-Type": "application/json"},
                )
                reply = conn.getresponse()
                raw = reply.read()
                status = reply.status
                keep = not reply.will_close
            except (
                http.client.RemoteDisconnected,
                BrokenPipeError,
                ConnectionResetError,
            ) as exc:
                self._http_pool.discard(conn)
                if reused and not retried:
                    retried = True
                    continue
                raise self._classify_transport_fault(exc, method, path) from exc
            except (OSError, http.client.HTTPException) as exc:
                self._http_pool.discard(conn)
                raise self._classify_transport_fault(exc, method, path) from exc
            break
        if keep:
            self._http_pool.release(conn)
        else:
            self._http_pool.discard(conn)
        if status >= 400:
            detail = ""
            try:
                detail = json.loads(raw).get("error") or ""
            except Exception:
                pass
            message = (
                f"{method} {path} failed with HTTP {status}"
                + (f": {detail}" if detail else "")
            )
            if status == 400:
                raise ProtocolError(message)
            raise RemoteHTTPError(message, status)
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ProtocolError(
                f"{method} {path} answered non-JSON payload"
            ) from exc

    def _acquire_http(self, method: str, path: str):
        try:
            return self._http_pool.acquire()
        except OSError as exc:  # a fresh dial refused/unroutable
            raise self._classify_transport_fault(exc, method, path) from exc

    def _classify_transport_fault(
        self, exc: Exception, method: str, path: str
    ) -> RemoteServerError:
        """Map a socket-layer fault onto the typed taxonomy.

        A failover layer keys retry policy on the type: connection
        faults never executed (retry anywhere), timeouts may have
        (retry because estimates are idempotent), anything else stays a
        plain :class:`~repro.errors.RemoteServerError`.
        """
        if isinstance(exc, TimeoutError):  # socket.timeout is an alias
            return RemoteTimeoutError(
                f"{method} {path} to {self.url} timed out "
                f"after {self.timeout:g}s: {exc}"
            )
        if isinstance(exc, ConnectionError):  # refused/reset/aborted
            return RemoteConnectionError(
                f"cannot reach estimation service at {self.url}: {exc}"
            )
        return RemoteServerError(
            f"cannot reach estimation service at {self.url}: {exc}"
        )

    # ------------------------------------------------------------------
    # binary transport
    # ------------------------------------------------------------------
    @property
    def active_transport(self) -> str | None:
        """The negotiated estimate transport (``None`` = not yet known)."""
        return self._active

    @property
    def connections_opened(self) -> dict:
        """Lifetime TCP connects per transport (the keep-alive gate)."""
        return {
            "json": self._http_pool.opened,
            "binary": 0 if self._binary_pool is None else self._binary_pool.opened,
        }

    def negotiate_transport(self, health: dict | None = None) -> str:
        """Settle the estimate transport now; returns ``"json"``/``"binary"``.

        ``health`` is an already-fetched ``/v1/healthz`` payload (the
        gateway passes the one its prober just read); without it, one
        is fetched.  ``transport="auto"`` picks binary iff the server
        advertises it at this build's wire version.  An HTTP-level or
        malformed-payload answer settles on JSON (the server is alive —
        it just can't speak binary); a *transport* fault propagates and
        leaves negotiation open for the next call.
        """
        with self._negotiate_lock:
            if self._active is not None:
                return self._active
            try:
                if health is None:
                    health = self.healthz()
                # Piggyback feature detection on the health payload the
                # negotiation already holds (additive v1 field; absent
                # on pre-plan servers -> False).
                self._plan_capable = bool(health.get("plan"))
                offered = health.get("transports")
                binary = offered.get("binary") if isinstance(offered, dict) else None
                usable = (
                    isinstance(binary, dict)
                    and binary.get("wire_version") == wire.WIRE_VERSION
                    and isinstance(binary.get("port"), int)
                )
            except (RemoteHTTPError, ProtocolError):
                usable = False
                if self.transport == "binary":
                    raise
            if usable:
                host = binary.get("host")
                if not isinstance(host, str) or not host:
                    host = urllib.parse.urlsplit(self.url).hostname
                self._binary_pool = _SocketPool(
                    host, binary["port"], self.timeout
                )
                self._active = "binary"
            else:
                if self.transport == "binary":
                    raise RemoteServerError(
                        f"server at {self.url} does not offer the binary "
                        f"transport at wire version {wire.WIRE_VERSION}"
                    )
                self._active = "json"
            return self._active

    def _binary_call(self, kind: int, payload: bytes, what: str):
        """One frame round trip; returns ``(kind, payload)`` of the reply.

        Fault mapping mirrors the HTTP path: dial faults are
        connection errors (never executed), timeouts are timeouts (may
        have executed), a connection that dies *mid-frame* is a plain
        :class:`~repro.errors.RemoteServerError` (the request may have
        executed; no partial response is ever surfaced), and version
        skew / malformed frames are :class:`~repro.errors.ProtocolError`.
        """
        pool = self._binary_pool
        if pool is None:  # pragma: no cover - guarded by negotiation
            raise RemoteServerError("binary transport is not negotiated")
        retried = False
        while True:
            try:
                sock, reused = pool.acquire()
            except OSError as exc:
                raise self._classify_transport_fault(exc, "BINARY", what) from exc
            try:
                wire.write_frame(sock, kind, payload)
                frame = wire.read_frame(sock)
            except wire.TruncatedFrame as exc:
                pool.discard(sock)
                raise RemoteServerError(
                    f"binary {what} to {self.url}: connection lost mid-frame "
                    f"(the request may have executed): {exc}"
                ) from exc
            except ProtocolError:
                pool.discard(sock)
                raise
            except (OSError, TimeoutError) as exc:
                pool.discard(sock)
                if (
                    reused
                    and not retried
                    and isinstance(exc, ConnectionError)
                ):
                    retried = True  # stale keep-alive socket: one re-dial
                    continue
                raise self._classify_transport_fault(exc, "BINARY", what) from exc
            if frame is None:
                pool.discard(sock)
                if reused and not retried:
                    retried = True
                    continue
                raise RemoteConnectionError(
                    f"binary {what}: server at {self.url} closed the "
                    "connection before answering"
                )
            break
        reply_kind, reply_payload = frame
        if reply_kind == wire.KIND_ERROR:
            # The server answers transport-level failures with one
            # error frame and closes; never reuse this socket.
            pool.discard(sock)
            message, code = wire.decode_error(reply_payload)
            if code == "protocol":
                raise ProtocolError(f"binary {what}: {message}")
            raise RemoteServerError(f"binary {what}: {message}")
        pool.release(sock)
        return reply_kind, reply_payload

    def _observe(self, server_ms, elapsed: float, n: int = 1) -> None:
        for _ in range(n):
            self.wire_latency.observe(elapsed / max(n, 1))
        if isinstance(server_ms, (int, float)):
            for _ in range(n):
                self.server_latency.observe(server_ms / 1000.0 / max(n, 1))

    # ------------------------------------------------------------------
    # the SketchService surface
    # ------------------------------------------------------------------
    def estimate(
        self, request: Query | str, sketch: str | None = None
    ) -> EstimateResponse:
        """One blocking round trip (binary frame or ``POST /v1/estimate``)."""
        import time

        transport = self._active or self.negotiate_transport()
        t0 = time.perf_counter()
        if transport == "binary":
            reply_kind, payload = self._binary_call(
                wire.KIND_ESTIMATE,
                wire.encode_estimate_request(request, sketch),
                "estimate",
            )
            if reply_kind != wire.KIND_RESPONSE:
                raise ProtocolError(
                    f"binary estimate answered frame kind 0x{reply_kind:02x}"
                )
            response, server_ms = wire.decode_response(payload)
        else:
            body = self._http(
                "POST",
                "/v1/estimate",
                protocol.estimate_request_to_wire(request, sketch),
            )
            response = protocol.response_from_wire(body)
            server_ms = body.get("server_ms")
        self._observe(server_ms, time.perf_counter() - t0)
        return self._restore_request(response, request)

    def estimate_many(
        self, requests: Sequence[Query | str], sketch: str | None = None
    ) -> list[EstimateResponse]:
        """One round trip for a whole batch (binary batch frame or
        ``POST /v1/estimate_batch``)."""
        import time

        requests = list(requests)
        if not requests:
            return []
        transport = self._active or self.negotiate_transport()
        t0 = time.perf_counter()
        if transport == "binary":
            reply_kind, payload = self._binary_call(
                wire.KIND_BATCH,
                wire.encode_batch_request(requests, sketch),
                "estimate_batch",
            )
            if reply_kind != wire.KIND_BATCH_RESPONSE:
                raise ProtocolError(
                    f"binary estimate_batch answered frame "
                    f"kind 0x{reply_kind:02x}"
                )
            responses, server_ms = wire.decode_batch_response(payload)
        else:
            body = self._http(
                "POST",
                "/v1/estimate_batch",
                protocol.batch_request_to_wire(requests, sketch),
            )
            responses = protocol.batch_response_from_wire(body)
            server_ms = body.get("server_ms")
        if len(responses) != len(requests):
            raise ProtocolError(
                f"batch answered {len(responses)} responses "
                f"for {len(requests)} requests"
            )
        self._observe(server_ms, time.perf_counter() - t0, n=len(requests))
        return [
            self._restore_request(response, request)
            for response, request in zip(responses, requests)
        ]

    def submit(self, request: Query | str, sketch: str | None = None):
        """Non-blocking enqueue; the future resolves when the round
        trip completes (a structured response, never an exception, for
        request-level failures — transport faults do surface through
        the future as :class:`~repro.errors.RemoteServerError`)."""
        return self._ensure_pool().submit(self.estimate, request, sketch)

    def submit_many(
        self, requests: Sequence[Query | str], sketch: str | None = None
    ):
        """Amortized intake: one wire round trip for the whole batch,
        fanned out to one future per request."""
        requests = list(requests)
        futures: list[Future[EstimateResponse]] = [Future() for _ in requests]
        for future in futures:
            future.set_running_or_notify_cancel()
        if not requests:
            return futures

        def round_trip() -> None:
            try:
                responses = self.estimate_many(requests, sketch)
            except BaseException as exc:
                for future in futures:
                    future.set_exception(exc)
                return
            for future, response in zip(futures, responses):
                future.set_result(response)

        self._ensure_pool().submit(round_trip)
        return futures

    def serve(
        self, requests: Iterable[Query | str], sketch: str | None = None
    ) -> list[EstimateResponse]:
        """Submit a stream and block for all responses (submission order)."""
        return self.estimate_many(list(requests), sketch)

    def plan_capable(self, health: dict | None = None) -> bool:
        """Whether the server advertises the plan advisory capability.

        Read from ``/v1/healthz``'s additive ``plan`` field — absent on
        pre-plan servers.  Cached after the first look (negotiation
        caches it for free); ``health`` short-circuits the fetch when
        the caller already holds a health payload.
        """
        if health is not None:
            self._plan_capable = bool(health.get("plan"))
        elif self._plan_capable is None:
            try:
                self._plan_capable = bool(self.healthz().get("plan"))
            except (RemoteHTTPError, ProtocolError):
                self._plan_capable = False
        return self._plan_capable

    def plan(
        self, request: Query | str, sketch: str | None = None
    ) -> PlanResponse:
        """Join-order advice in **one** wire round trip.

        ``POST /v1/plan`` (or one ``KIND_PLAN`` frame on the binary
        transport): the server enumerates every connected subplan,
        answers them as a single engine batch, and runs the DP
        enumerator over the injected estimates
        (:mod:`repro.serve.plan`).  Request-level failures arrive as
        structured ``ok=False`` :class:`~repro.serve.plan.PlanResponse`
        values; a server without the capability (feature-detected via
        ``/v1/healthz``) raises :class:`~repro.errors.RemoteServerError`.
        """
        import time

        if not self.plan_capable():
            raise RemoteServerError(
                f"server at {self.url} does not advertise the plan "
                "advisory capability (/v1/plan)"
            )
        transport = self._active or self.negotiate_transport()
        t0 = time.perf_counter()
        if transport == "binary":
            reply_kind, payload = self._binary_call(
                wire.KIND_PLAN,
                wire.encode_plan_request(request, sketch),
                "plan",
            )
            if reply_kind != wire.KIND_PLAN_RESPONSE:
                raise ProtocolError(
                    f"binary plan answered frame kind 0x{reply_kind:02x}"
                )
            response, server_ms = wire.decode_plan_response(payload)
        else:
            body = self._http(
                "POST",
                "/v1/plan",
                protocol.plan_request_to_wire(request, sketch),
            )
            response = protocol.plan_response_from_wire(body)
            server_ms = body.get("server_ms")
        self._observe(server_ms, time.perf_counter() - t0)
        response.request = request
        return response

    def stats_summary(self) -> dict:
        """The server engine's telemetry snapshot: ``GET /v1/stats``
        (byte-for-byte the shape in-process ``stats_summary()`` returns).
        Always JSON — the control surface does not negotiate."""
        return self._http("GET", "/v1/stats")

    def healthz(self) -> dict:
        """Liveness probe: ``GET /v1/healthz``.  Always JSON."""
        return self._http("GET", "/v1/healthz")

    def timings(self) -> dict:
        """Client-side latency split: wire round trip vs server time.

        ``wire`` percentiles are client-observed per-request latency
        (batch round trips amortized across their requests); ``server``
        percentiles are the service's self-reported handling time from
        the response envelopes.  The gap is marshalling + network.
        ``transport`` is the negotiated estimate transport and
        ``connections_opened`` the lifetime TCP dials per transport
        (the keep-alive regression gate reads it).
        """
        return {
            "wire": self.wire_latency.summary(),
            "server": self.server_latency.summary(),
            "transport": self._active,
            "connections_opened": self.connections_opened,
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise RemoteServerError("client is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._workers,
                    thread_name_prefix="sketch-remote",
                )
            return self._pool

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the thread pool and every pooled connection
        (idempotent).  In-flight ``submit`` round trips complete first;
        the remote server is not affected."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)
        self._http_pool.close_all()
        if self._binary_pool is not None:
            self._binary_pool.close_all()

    def __enter__(self) -> "RemoteSketchServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        transport = self._active or self.transport
        return (
            f"RemoteSketchServer(url={self.url!r}, "
            f"transport={transport!r}, {state})"
        )

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _restore_request(
        response: EstimateResponse, original: Query | str
    ) -> EstimateResponse:
        """Hand back the caller's own request object.

        The wire round-trips requests losslessly (``parse_sql(to_sql(q))
        == q``), but handing back the *identical* object the caller
        passed matches the in-process facades exactly — response.request
        is their request, not an equal reconstruction.
        """
        response.request = original
        return response


__all__ = ["RemoteSketchServer", "TRANSPORTS"]

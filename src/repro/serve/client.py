"""`RemoteSketchServer` — the client SDK of the estimation service.

The third :class:`~repro.serve.service.SketchService` implementation:
the same ``submit`` / ``submit_many`` / ``estimate`` / ``serve`` /
``stats_summary`` / ``close`` surface as the in-process facades, spoken
over the versioned wire protocol (:mod:`repro.serve.protocol`) to a
:class:`~repro.serve.http.SketchHTTPServer`.  Swapping a local facade
for remote serving is a one-line change::

    service = SketchServer(manager)                    # before
    service = RemoteSketchServer("http://host:8080")   # after
    with service:
        response = service.estimate(sql)               # unchanged

Stdlib-only (``urllib.request``), deliberately: the SDK must import
anywhere the library does.

Semantics worth knowing:

* **Responses are values, never exceptions.**  Request-level failures
  (parse/route/vocab/shed/deadline) arrive as ``ok=False``
  :class:`~repro.serve.engine.EstimateResponse` objects with the same
  structured ``code`` a local caller would see — identical dispatch
  code on both sides of the wire.  Only *transport* failures
  (connection refused, truncated body, version skew) raise —
  :class:`~repro.errors.RemoteServerError` or
  :class:`~repro.errors.ProtocolError`.
* **submit() is non-blocking.**  A small thread pool issues the round
  trip and resolves the returned future; ``submit_many`` sends the
  whole batch as **one** ``POST /v1/estimate_batch`` (one round trip,
  one server-side amortized intake) and fans the batch response out to
  per-request futures.
* **Batching still happens server-side.**  Concurrent ``submit`` calls
  from many client processes coalesce in the server's engine exactly
  like concurrent in-process submitters; the SDK adds no client-side
  waiting.
* ``server_ms`` timings from response envelopes are accumulated into
  :meth:`timings` so callers can split wire overhead from serving time
  (the ``--http`` benchmark does).
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Iterable, Sequence

from ..errors import (
    ProtocolError,
    RemoteConnectionError,
    RemoteHTTPError,
    RemoteServerError,
    RemoteTimeoutError,
)
from ..metrics import LatencySummary
from ..workload.query import Query
from .engine import EstimateResponse
from . import protocol


class RemoteSketchServer:
    """Estimation over the wire, behind the one `SketchService` surface.

    ``url`` is the front door's base address (``http://host:port``);
    ``timeout`` bounds each HTTP round trip (seconds);
    ``connection_workers`` sizes the thread pool that makes
    :meth:`submit` non-blocking (it does not limit the server's
    concurrency, only this client's in-flight round trips).

    The client is thread-safe: any number of caller threads may
    submit/estimate concurrently.
    """

    def __init__(
        self,
        url: str,
        *,
        timeout: float = 30.0,
        connection_workers: int = 4,
    ):
        if not url.startswith(("http://", "https://")):
            raise RemoteServerError(
                f"url must start with http:// or https://, got {url!r}"
            )
        self.url = url.rstrip("/")
        self.timeout = float(timeout)
        if self.timeout <= 0:
            raise RemoteServerError(
                f"timeout must be positive, got {timeout!r}"
            )
        if connection_workers <= 0:
            raise RemoteServerError(
                f"connection_workers must be positive, got {connection_workers!r}"
            )
        self._workers = int(connection_workers)
        self._pool: ThreadPoolExecutor | None = None
        self._lock = threading.Lock()
        self._closed = False
        #: Client-observed round-trip latency (seconds) per request.
        self.wire_latency = LatencySummary(window=8192)
        #: Server-reported handling time (seconds) per round trip.
        self.server_latency = LatencySummary(window=8192)

    # ------------------------------------------------------------------
    # transport
    # ------------------------------------------------------------------
    def _http(self, method: str, path: str, payload: dict | None = None) -> dict:
        """One JSON round trip; structured 4xx/5xx bodies raise typed
        errors, transport faults raise RemoteServerError."""
        if self._closed:
            raise RemoteServerError("client is closed")
        body = None if payload is None else json.dumps(payload).encode("utf-8")
        request = urllib.request.Request(
            self.url + path,
            data=body,
            method=method,
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                raw = reply.read()
        except urllib.error.HTTPError as exc:
            # The front door answers errors with a structured JSON body;
            # surface its message (and 400s as protocol errors).
            detail = ""
            try:
                wire = json.loads(exc.read())
                detail = wire.get("error") or ""
            except Exception:
                pass
            message = (
                f"{method} {path} failed with HTTP {exc.code}"
                + (f": {detail}" if detail else "")
            )
            if exc.code == 400:
                raise ProtocolError(message) from exc
            raise RemoteHTTPError(message, exc.code) from exc
        except OSError as exc:  # URLError, timeouts, refused connections
            raise self._classify_transport_fault(exc, method, path) from exc
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ProtocolError(
                f"{method} {path} answered non-JSON payload"
            ) from exc

    def _classify_transport_fault(
        self, exc: OSError, method: str, path: str
    ) -> RemoteServerError:
        """Map an OSError from ``urlopen`` onto the typed taxonomy.

        ``urllib`` wraps most socket faults in ``URLError`` with the
        real exception on ``.reason``, but timeouts and resets can also
        surface bare — classify the innermost cause.  A failover layer
        keys retry policy on the type: connection faults never executed
        (retry anywhere), timeouts may have (retry because estimates
        are idempotent), anything else stays a plain
        :class:`~repro.errors.RemoteServerError`.
        """
        cause = exc
        if isinstance(exc, urllib.error.URLError) and isinstance(
            exc.reason, BaseException
        ):
            cause = exc.reason
        if isinstance(cause, TimeoutError):  # socket.timeout is an alias
            return RemoteTimeoutError(
                f"{method} {path} to {self.url} timed out "
                f"after {self.timeout:g}s: {cause}"
            )
        if isinstance(cause, ConnectionError):  # refused/reset/aborted
            return RemoteConnectionError(
                f"cannot reach estimation service at {self.url}: {cause}"
            )
        return RemoteServerError(
            f"cannot reach estimation service at {self.url}: {exc}"
        )

    def _observe(self, payload: dict, elapsed: float, n: int = 1) -> None:
        for _ in range(n):
            self.wire_latency.observe(elapsed / max(n, 1))
        server_ms = payload.get("server_ms")
        if isinstance(server_ms, (int, float)):
            for _ in range(n):
                self.server_latency.observe(server_ms / 1000.0 / max(n, 1))

    # ------------------------------------------------------------------
    # the SketchService surface
    # ------------------------------------------------------------------
    def estimate(
        self, request: Query | str, sketch: str | None = None
    ) -> EstimateResponse:
        """One blocking round trip: ``POST /v1/estimate``."""
        import time

        t0 = time.perf_counter()
        payload = self._http(
            "POST",
            "/v1/estimate",
            protocol.estimate_request_to_wire(request, sketch),
        )
        response = protocol.response_from_wire(payload)
        self._observe(payload, time.perf_counter() - t0)
        return self._restore_request(response, request)

    def estimate_many(
        self, requests: Sequence[Query | str], sketch: str | None = None
    ) -> list[EstimateResponse]:
        """One round trip for a whole batch: ``POST /v1/estimate_batch``."""
        import time

        requests = list(requests)
        if not requests:
            return []
        t0 = time.perf_counter()
        payload = self._http(
            "POST",
            "/v1/estimate_batch",
            protocol.batch_request_to_wire(requests, sketch),
        )
        responses = protocol.batch_response_from_wire(payload)
        if len(responses) != len(requests):
            raise ProtocolError(
                f"batch answered {len(responses)} responses "
                f"for {len(requests)} requests"
            )
        self._observe(payload, time.perf_counter() - t0, n=len(requests))
        return [
            self._restore_request(response, request)
            for response, request in zip(responses, requests)
        ]

    def submit(self, request: Query | str, sketch: str | None = None):
        """Non-blocking enqueue; the future resolves when the round
        trip completes (a structured response, never an exception, for
        request-level failures — transport faults do surface through
        the future as :class:`~repro.errors.RemoteServerError`)."""
        return self._ensure_pool().submit(self.estimate, request, sketch)

    def submit_many(
        self, requests: Sequence[Query | str], sketch: str | None = None
    ):
        """Amortized intake: one wire round trip for the whole batch,
        fanned out to one future per request."""
        requests = list(requests)
        futures: list[Future[EstimateResponse]] = [Future() for _ in requests]
        for future in futures:
            future.set_running_or_notify_cancel()
        if not requests:
            return futures

        def round_trip() -> None:
            try:
                responses = self.estimate_many(requests, sketch)
            except BaseException as exc:
                for future in futures:
                    future.set_exception(exc)
                return
            for future, response in zip(futures, responses):
                future.set_result(response)

        self._ensure_pool().submit(round_trip)
        return futures

    def serve(
        self, requests: Iterable[Query | str], sketch: str | None = None
    ) -> list[EstimateResponse]:
        """Submit a stream and block for all responses (submission order)."""
        return self.estimate_many(list(requests), sketch)

    def stats_summary(self) -> dict:
        """The server engine's telemetry snapshot: ``GET /v1/stats``
        (byte-for-byte the shape in-process ``stats_summary()`` returns)."""
        return self._http("GET", "/v1/stats")

    def healthz(self) -> dict:
        """Liveness probe: ``GET /v1/healthz``."""
        return self._http("GET", "/v1/healthz")

    def timings(self) -> dict:
        """Client-side latency split: wire round trip vs server time.

        ``wire`` percentiles are client-observed per-request latency
        (batch round trips amortized across their requests); ``server``
        percentiles are the service's self-reported handling time from
        the response envelopes.  The gap is marshalling + network.
        """
        return {
            "wire": self.wire_latency.summary(),
            "server": self.server_latency.summary(),
        }

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    def _ensure_pool(self) -> ThreadPoolExecutor:
        with self._lock:
            if self._closed:
                raise RemoteServerError("client is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self._workers,
                    thread_name_prefix="sketch-remote",
                )
            return self._pool

    @property
    def closed(self) -> bool:
        return self._closed

    def close(self) -> None:
        """Release the connection pool (idempotent).  In-flight
        ``submit`` round trips complete first; the remote server is
        not affected."""
        with self._lock:
            if self._closed:
                return
            self._closed = True
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self) -> "RemoteSketchServer":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"RemoteSketchServer(url={self.url!r}, {state})"

    # ------------------------------------------------------------------
    # helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _restore_request(
        response: EstimateResponse, original: Query | str
    ) -> EstimateResponse:
        """Hand back the caller's own request object.

        The wire round-trips requests losslessly (``parse_sql(to_sql(q))
        == q``), but handing back the *identical* object the caller
        passed matches the in-process facades exactly — response.request
        is their request, not an equal reconstruction.
        """
        response.request = original
        return response


__all__ = ["RemoteSketchServer"]

"""Pluggable micro-batch executors for the estimation engine.

The :class:`~repro.serve.engine.EstimationEngine` owns the request
lifecycle — parse, route, dedup, cache, admission, micro-batching —
and hands each ready micro-batch ("flush job") to an executor.  The
executor's only obligation is: answer every job's responses (estimate
or error, in place) and call ``engine.complete_job(job)`` exactly once
per job so futures resolve and per-waiter accounting happens.  Three
implementations cover the scale spectrum:

* :class:`InlineExecutor` — answers each job on the calling thread
  through the engine's inline chunk path, one after another.  This is
  the pre-engine behavior, bit for bit: same ``estimate_many`` call,
  same cache interaction, same error isolation.  Lowest latency at low
  load; the default.
* :class:`ThreadExecutor` — dispatches jobs of one flush round to a
  thread pool.  Python threads share the GIL, but the BLAS kernels
  behind the compiled forward release it, and chunks of *different*
  sketches overlap their Python-side featurization with each other's
  model time.  No serialization cost; worker threads run the exact
  inline path (the per-sketch caches are internally locked).
* :class:`ProcessExecutor` — true multi-core scale-out.  Each worker
  process receives a pickled
  :class:`~repro.core.sketch.SketchSnapshot` per sketch — the compiled
  :class:`~repro.nn.inference.InferenceSession` weight arrays plus the
  materialized sample tables — restored once per (worker, sketch
  generation); workers never retrain, rebuild samples, or touch
  autograd.  The parent keeps the caches: it answers cache hits and
  collapses duplicates before shipping only the distinct uncached
  queries, and it writes the results back into the shared cache so
  later requests hit without crossing a process boundary.  Snapshots
  are re-shipped (by rebuilding the pool) when a sketch's
  ``snapshot_token`` changes — a retrained or re-registered sketch can
  never be served from stale worker weights.

Two opt-in refinements reshape the process path (``ServeConfig``
flags, both default-off):

* ``shm_snapshots`` — snapshots are published once into
  shared-memory segments (:mod:`repro.serve.shm`) and workers *map*
  them as read-only views instead of unpickle-copying: per-worker
  snapshot cost drops to page tables, and only a few-KB descriptor
  crosses the process boundary.  Segment lifecycle follows
  ``snapshot_token`` exactly as re-shipping does, so hot swaps retire
  segments only after their pool generation is gone.
* ``sticky_routing`` — :class:`StickyProcessExecutor` pins each sketch
  to one dedicated worker, which keeps a worker-side template
  :class:`~repro.serve.feature_cache.FeatureCache` warm across
  micro-batches and re-ships single sketches via an install task
  instead of pool rebuilds.

Executors are constructed from :class:`~repro.serve.engine.ServeConfig`
via :func:`make_executor` (``config.executor`` by name); unknown names
are rejected at config construction, so the factory never guesses.

Failure behavior: a broken worker pool (a worker killed by the OOM
killer, a pickling failure) degrades gracefully — the affected jobs
fall back to the inline path in the parent, the pool is discarded and
lazily rebuilt on the next flush, and ``n_executor_fallbacks`` counts
the events.  No future is ever abandoned through any of these paths.
"""

from __future__ import annotations

import pickle
import threading
import time
from concurrent.futures import CancelledError
from concurrent.futures import ProcessPoolExecutor as _ProcessPool
from concurrent.futures import ThreadPoolExecutor as _ThreadPool

from ..errors import SketchError

#: Valid ``ServeConfig.executor`` values, in escalation order.
EXECUTOR_NAMES = ("inline", "thread", "process")

#: Valid ``ServeConfig.mp_start_method`` values (``None`` = pick).
MP_START_METHODS = ("fork", "spawn", "forkserver")


class ChunkExecutor:
    """Interface: answer flush jobs and complete them on the engine."""

    name = "abstract"
    workers = 1

    def run(self, engine, jobs) -> None:
        """Answer every job (in place) and ``engine.complete_job`` each.

        ``jobs`` is a list of :class:`~repro.serve.engine.FlushJob`.
        Implementations must not raise for per-request failures (those
        become error responses); the engine additionally guards the
        whole call so even an executor bug cannot strand a future.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release pooled resources (idempotent)."""


class InlineExecutor(ChunkExecutor):
    """The current-thread executor: jobs run serially, bit-identically
    to the pre-engine serving paths."""

    name = "inline"

    def run(self, engine, jobs) -> None:
        for job in jobs:
            engine.run_job_inline(job)


class ThreadExecutor(ChunkExecutor):
    """Thread-pool executor: one flush round's jobs run concurrently.

    A single job skips the pool entirely (no hand-off latency when
    there is nothing to overlap).
    """

    name = "thread"

    def __init__(self, workers: int = 2):
        self.workers = int(workers)
        self._pool: _ThreadPool | None = None
        self._lock = threading.Lock()

    def _ensure_pool(self) -> _ThreadPool:
        with self._lock:
            if self._pool is None:
                self._pool = _ThreadPool(
                    max_workers=self.workers,
                    thread_name_prefix="sketch-serve-exec",
                )
            return self._pool

    def run(self, engine, jobs) -> None:
        if len(jobs) == 1:
            engine.run_job_inline(jobs[0])
            return
        pool = self._ensure_pool()
        futures = [pool.submit(engine.run_job_inline, job) for job in jobs]
        for future in futures:
            future.result()

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)


# ----------------------------------------------------------------------
# process-pool scale-out
# ----------------------------------------------------------------------

#: Worker-process registry: sketch name -> restored estimation-only
#: DeepSketch.  Populated by the pool initializer; module-level so it
#: survives across tasks.  Staleness is managed entirely parent-side
#: (``ProcessExecutor._shipped`` vs ``snapshot_token``): a stale sketch
#: means a new pool, never a worker-side check.
_WORKER_SKETCHES: dict = {}

#: Shared-memory attachments backing shm-shipped sketches, kept so the
#: mapping outlives the install call (sketch name -> AttachedSnapshot).
_WORKER_ATTACHMENTS: dict = {}

#: Sticky workers keep a worker-side template feature cache: the same
#: sketch always lands on the same worker, so featurization state built
#: for a query template is warm for the next micro-batch.  ``None``
#: outside sticky mode (non-sticky pools are re-shipped wholesale on
#: token changes; a cache keyed by featurizer identity would never hit
#: across rebuilds anyway).
_WORKER_FEATURE_CACHE = None


def _install_sketch(name: str, payload) -> None:
    """(Re)install one sketch in this worker from either payload kind.

    ``payload`` is a pickled :class:`~repro.core.sketch.SketchSnapshot`
    blob (the copy path) or a :class:`~repro.serve.shm.SegmentDescriptor`
    (the zero-copy path: attach the parent's segment and restore over
    read-only views).  Replacing an shm-shipped sketch detaches its old
    mapping first so a retired segment's memory is actually released.
    """
    previous = _WORKER_ATTACHMENTS.pop(name, None)
    if previous is not None:
        previous.detach()
    if isinstance(payload, (bytes, bytearray)):
        _WORKER_SKETCHES[name] = pickle.loads(payload).restore()
    else:
        from .shm import AttachedSnapshot

        attachment = AttachedSnapshot(payload)
        _WORKER_ATTACHMENTS[name] = attachment
        _WORKER_SKETCHES[name] = attachment.sketch


def _worker_init(payloads: dict, warm_features: bool = False) -> None:
    """Pool initializer: restore every shipped sketch snapshot once."""
    global _WORKER_FEATURE_CACHE
    _WORKER_SKETCHES.clear()
    for attachment in _WORKER_ATTACHMENTS.values():
        attachment.detach()
    _WORKER_ATTACHMENTS.clear()
    if warm_features and _WORKER_FEATURE_CACHE is None:
        from .feature_cache import FeatureCache

        _WORKER_FEATURE_CACHE = FeatureCache()
    for name, payload in payloads.items():
        _install_sketch(name, payload)


def _worker_install(name: str, payload) -> bool:
    """Install task for sticky pools: runs *on* the slot's one worker.

    Sticky slots ship sketches through a submitted task instead of a
    pool rebuild, so a hot swap re-ships one sketch without tearing
    down the worker (or its warm feature cache).
    """
    _install_sketch(name, payload)
    return True


def _worker_answer(sketch_name: str, queries: list) -> tuple[list, int]:
    """Answer distinct uncached queries in a worker process.

    Returns ``(results, n_forwards)`` where ``results[i]`` is
    ``(estimate, None, None)`` or ``(None, error message, error code)``
    for ``queries[i]``.  Mirrors the inline path's error isolation and
    error-code classification: a batch-level featurization failure
    falls back to per-query retries so only the offending queries fail.
    """
    from ..errors import FeaturizationError, ReproError

    sketch = _WORKER_SKETCHES.get(sketch_name)
    if sketch is None:
        raise RuntimeError(
            f"worker holds no snapshot for sketch {sketch_name!r}; "
            "the parent should have rebuilt the pool"
        )
    try:
        values = sketch.estimate_many(
            queries, use_cache=False, feature_cache=_WORKER_FEATURE_CACHE
        )
    except ReproError:
        from .engine import CODE_ROUTE, CODE_VOCAB

        results: list = []
        n_forwards = 0
        for query in queries:
            try:
                results.append(
                    (float(sketch.estimate(query, use_cache=False)), None, None)
                )
                n_forwards += 1
            except ReproError as exc:
                code = (
                    CODE_VOCAB
                    if isinstance(exc, FeaturizationError)
                    else CODE_ROUTE
                )
                results.append((None, str(exc), code))
        return results, n_forwards
    return [(float(v), None, None) for v in values], 1


class ProcessExecutor(ChunkExecutor):
    """Process-pool executor: featurization + forwards across cores.

    The pool is built lazily on the first flush and rebuilt whenever a
    referenced sketch is unshipped or its ``snapshot_token`` moved (a
    retrain/rebuild).  ``start_method`` defaults to the interpreter's
    own platform default (``multiprocessing.get_start_method()`` —
    ``fork`` on Linux through 3.13, ``forkserver``/``spawn`` later and
    elsewhere), so this executor is never riskier than stdlib pools on
    the same host.  The trade-off is real either way:
    ``fork`` is the only method that works from a REPL/stdin-driven
    parent (``spawn``/``forkserver`` re-import ``__main__``, which such
    parents don't have) but carries the classic fork-with-threads
    caveats when the async facade's flush loop builds the pool;
    ``spawn``/``forkserver`` are thread-safe but degrade REPL parents
    to the inline fallback.  ``ServeConfig.mp_start_method`` overrides
    the choice per deployment.
    """

    name = "process"

    def __init__(
        self,
        workers: int = 2,
        start_method: str | None = None,
        use_shm: bool = False,
    ):
        import multiprocessing

        self.workers = int(workers)
        self.use_shm = bool(use_shm)
        self._start_method = start_method or multiprocessing.get_start_method()
        self._pool: _ProcessPool | None = None
        self._shipped: dict[str, int] = {}
        #: sketch name -> live SnapshotSegment (shm mode only).  The
        #: parent owns every segment: published on ship, unlinked when
        #: the sketch's generation is retired (rebuild), discarded, or
        #: closed — the ``snapshot_token``-tied lifecycle that keeps
        #: the hot-swap zero-stale guarantee.
        self._segments: dict = {}
        self._lock = threading.Lock()

    # -- shared-memory segment lifecycle --------------------------------
    def _shm_payloads(self, ship: dict) -> dict:
        """Descriptors for every shipped sketch, publishing as needed.

        Reuses the current segment when the sketch's token is
        unchanged (alternating traffic must not republish), publishes a
        new segment otherwise, and unlinks every replaced/dropped
        segment.  Callers guarantee the previous pool is already shut
        down (or its workers have detached), so an unlink here frees
        the memory as soon as lingering mappings close.
        """
        from .shm import SnapshotSegment

        payloads: dict = {}
        segments: dict = {}
        for name in sorted(ship):
            sketch = ship[name]
            segment = self._segments.get(name)
            if segment is None or segment.token != sketch.snapshot_token:
                segment = SnapshotSegment.publish(sketch.snapshot())
            segments[name] = segment
            payloads[name] = segment.descriptor
        for name, segment in self._segments.items():
            if segments.get(name) is not segment:
                segment.unlink()
        self._segments = segments
        return payloads

    def _unlink_segments(self) -> None:
        segments, self._segments = self._segments, {}
        for segment in segments.values():
            segment.unlink()

    # -- pool lifecycle -------------------------------------------------
    def _ensure_pool(self, engine, needed: dict[str, object]) -> _ProcessPool:
        """The live pool, rebuilt if any needed sketch is missing/stale.

        ``needed`` maps sketch name -> the *exact* sketch object this
        round is answering with.  On a rebuild, those objects are
        snapshotted directly (not re-fetched from the manager — a hot
        swap racing the round could otherwise ship the new version
        recorded under the old version's token, producing a
        mixed-version batch).  Previously shipped sketches that are
        still registered and current ride along, so alternating traffic
        between sketches does not thrash the pool.
        """
        with self._lock:
            if self._pool is not None and all(
                self._shipped.get(name) == sketch.snapshot_token
                for name, sketch in needed.items()
            ):
                return self._pool
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            ship = dict(needed)
            for name, token in self._shipped.items():
                if name in ship:
                    continue
                try:
                    sketch = engine.manager.get_sketch(name)
                except SketchError:
                    continue
                if sketch.snapshot_token == token:
                    ship[name] = sketch
            if self.use_shm:
                payloads = self._shm_payloads(ship)
            else:
                payloads = {
                    name: pickle.dumps(
                        ship[name].snapshot(), protocol=pickle.HIGHEST_PROTOCOL
                    )
                    for name in sorted(ship)
                }
            import multiprocessing

            context = multiprocessing.get_context(self._start_method)
            self._pool = _ProcessPool(
                max_workers=self.workers,
                mp_context=context,
                initializer=_worker_init,
                initargs=(payloads, False),
            )
            self._shipped = {
                name: sketch.snapshot_token for name, sketch in ship.items()
            }
            return self._pool

    def _discard_pool(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
            self._shipped = {}
            # Unlink before the workers are necessarily gone: POSIX
            # keeps an unlinked segment alive for existing mappings, so
            # dying workers are unaffected and the name is gone now.
            self._unlink_segments()
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    # -- the flush path -------------------------------------------------
    def run(self, engine, jobs) -> None:
        ready = []
        needed: dict[str, object] = {}
        for job in jobs:
            try:
                sketch = engine.manager.get_sketch(job.sketch)
            except SketchError as exc:
                # Dropped between routing and flushing: same isolation
                # as the inline path.
                from .engine import CODE_ROUTE

                for response in job.responses:
                    response.error = str(exc)
                    response.code = CODE_ROUTE
                engine.complete_job(job)
                continue
            needed[job.sketch] = sketch
            ready.append((job, sketch))
        if not ready:
            return
        try:
            pool = self._ensure_pool(engine, needed)
        except Exception:
            # Pool cannot be (re)built — run the round inline instead of
            # failing requests over an infrastructure hiccup.
            engine.count_executor_fallback(len(ready))
            for job, _ in ready:
                engine.run_job_inline(job)
            return
        dispatched = []
        broken = False
        for job, sketch in ready:
            if not broken:
                try:
                    dispatched.append(
                        (job, sketch, self._dispatch(engine, pool, job, sketch))
                    )
                    continue
                except Exception:
                    # A pool that broke while idle (worker OOM-killed
                    # between rounds) surfaces here at submit time:
                    # discard it so the next flush rebuilds, and finish
                    # this round inline.
                    self._discard_pool()
                    broken = True
            engine.count_executor_fallback(1)
            engine.run_job_inline(job)
        for job, sketch, state in dispatched:
            self._collect(engine, job, sketch, state)

    def _dispatch(self, engine, pool, job, sketch):
        """Parent-side cache/dedup, then ship distinct uncached queries.

        Mirrors ``DeepSketch.estimate_many``'s batch construction (cache
        hits answered here, duplicates collapsed onto one slot, distinct
        queries in first-occurrence order) so the worker's micro-batch is
        the same batch the inline path would have run.

        Scope note: collapsing is per job.  Duplicates split across two
        jobs of one caller-driven round dispatch before the first job's
        results land in the cache, so they may forward redundantly —
        correct, just not free.  The async facade's intake dedup merges
        such duplicates before jobs are formed, which is where
        duplicate-heavy live traffic is expected.
        """
        t0 = time.perf_counter()
        use_cache = engine.config.use_cache
        token = sketch.snapshot_token
        slots: list[int | None] = []
        distinct: list = []
        slot_of: dict = {}
        n_cached = 0
        for response in job.responses:
            # Version accounting: this parent-side sketch object (and the
            # worker snapshot shipped under the same token) answers the
            # whole job — cache hits here, forwards in the worker.
            response.token = token
            hit = sketch.cache.get(response.query) if use_cache else None
            if hit is not None:
                response.cached = True
                response.estimate = float(hit)
                n_cached += 1
                slots.append(None)
                continue
            slot = slot_of.get(response.query)
            if slot is None:
                slot = len(distinct)
                distinct.append(response.query)
                slot_of[response.query] = slot
            slots.append(slot)
        future = pool.submit(_worker_answer, job.sketch, distinct) if distinct else None
        return t0, slots, future, n_cached

    def _collect(self, engine, job, sketch, state, on_broken=None) -> None:
        t0, slots, future, n_cached = state
        use_cache = engine.config.use_cache
        n_forwards = 0
        if future is not None:
            try:
                results, n_forwards = future.result()
            except (Exception, CancelledError):
                # CancelledError is Exception-derived on current
                # CPython, but a sibling job's _discard_pool cancels
                # queued futures — name it so the no-stranded-futures
                # chain survives any future exception-hierarchy move.
                # Worker or transport failure: the pool may be broken —
                # discard it (or, sticky, just this job's slot) and
                # answer the model portion inline.
                (on_broken or self._discard_pool)()
                engine.count_executor_fallback(1)
                subset = [
                    r
                    for r, slot in zip(job.responses, slots)
                    if slot is not None
                ]
                # answer_subset records this job's flush latency itself
                # (one observation per job, like every other path).
                engine.answer_subset(job.sketch, subset)
                engine.merge_chunk_stats(n_cache_hits=n_cached)
                engine.complete_job(job)
                return
            for response, slot in zip(job.responses, slots):
                if slot is None:
                    continue
                value, error, code = results[slot]
                if error is not None:
                    response.error = error
                    response.code = code
                else:
                    response.estimate = value
                    if use_cache:
                        sketch.cache.put(response.query, value)
        engine.merge_chunk_stats(
            n_forward_batches=n_forwards, n_cache_hits=n_cached
        )
        engine.record_flush_latency(time.perf_counter() - t0)
        engine.complete_job(job)

    def close(self) -> None:
        with self._lock:
            pool, self._pool = self._pool, None
            self._shipped = {}
            self._unlink_segments()
        if pool is not None:
            pool.shutdown(wait=True)


class StickyProcessExecutor(ProcessExecutor):
    """Process executor with sketch-to-worker pinning ("sticky routing").

    ``workers`` independent single-worker pools ("slots"); each sketch
    is assigned to one slot on first sight (least-loaded wins) and
    every later micro-batch for it runs on that same worker.  Pinning
    buys two things the shared pool cannot offer:

    * **Warm worker state.**  Each slot's worker keeps a module-level
      :class:`~repro.serve.feature_cache.FeatureCache`; since the same
      sketch (same featurizer) always lands there, template features
      built for one micro-batch are hits for the next.  The shared
      pool's workers can't do this usefully — any of them may see any
      sketch, and rebuilds discard the worker anyway.
    * **Rebuild-free re-shipping.**  A hot swap ships the new snapshot
      to one slot via a submitted :func:`_worker_install` task instead
      of tearing down the whole pool — other sketches' slots (and
      their warm caches) are untouched.

    Failure containment is per slot: a dead worker fails only its own
    sketches' jobs over to the inline path, its slot is discarded and
    lazily rebuilt, and the next round re-ships exactly like the
    shared pool's recovery — the degradation ladder is unchanged, just
    narrower.  Composes with ``use_shm`` (descriptors install instead
    of blobs).
    """

    name = "process-sticky"

    def __init__(
        self,
        workers: int = 2,
        start_method: str | None = None,
        use_shm: bool = False,
    ):
        super().__init__(
            workers=workers, start_method=start_method, use_shm=use_shm
        )
        self._slot_pools: list[_ProcessPool | None] = [None] * self.workers
        self._slot_shipped: list[dict[str, int]] = [
            {} for _ in range(self.workers)
        ]
        self._assignment: dict[str, int] = {}

    # -- slot lifecycle -------------------------------------------------
    def _slot_of(self, name: str) -> int:
        slot = self._assignment.get(name)
        if slot is None:
            load = [0] * self.workers
            for assigned in self._assignment.values():
                load[assigned] += 1
            slot = load.index(min(load))
            self._assignment[name] = slot
        return slot

    def _slot_pool(self, slot: int) -> _ProcessPool:
        pool = self._slot_pools[slot]
        if pool is None:
            import multiprocessing

            context = multiprocessing.get_context(self._start_method)
            pool = _ProcessPool(
                max_workers=1,
                mp_context=context,
                initializer=_worker_init,
                initargs=({}, True),
            )
            self._slot_pools[slot] = pool
            self._slot_shipped[slot] = {}
        return pool

    def _discard_slot(self, slot: int) -> None:
        pool, self._slot_pools[slot] = self._slot_pools[slot], None
        self._slot_shipped[slot] = {}
        if pool is not None:
            pool.shutdown(wait=False, cancel_futures=True)

    def _install(self, pool, slot: int, name: str, sketch) -> None:
        """Ship ``sketch`` to its slot if the worker's copy is stale."""
        token = sketch.snapshot_token
        if self._slot_shipped[slot].get(name) == token:
            return
        if self.use_shm:
            from .shm import SnapshotSegment

            segment = self._segments.get(name)
            retired = None
            if segment is None or segment.token != token:
                retired = segment
                segment = SnapshotSegment.publish(sketch.snapshot())
                self._segments[name] = segment
            payload = segment.descriptor
        else:
            retired = None
            payload = pickle.dumps(
                sketch.snapshot(), protocol=pickle.HIGHEST_PROTOCOL
            )
        pool.submit(_worker_install, name, payload).result()
        self._slot_shipped[slot][name] = token
        if retired is not None:
            # The install above detached the only worker mapping the
            # old generation, so this unlink releases it fully.
            retired.unlink()

    # -- the flush path -------------------------------------------------
    def run(self, engine, jobs) -> None:
        ready = []
        for job in jobs:
            try:
                sketch = engine.manager.get_sketch(job.sketch)
            except SketchError as exc:
                from .engine import CODE_ROUTE

                for response in job.responses:
                    response.error = str(exc)
                    response.code = CODE_ROUTE
                engine.complete_job(job)
                continue
            ready.append((job, sketch))
        dispatched = []
        with self._lock:
            for job, sketch in ready:
                slot = self._slot_of(job.sketch)
                try:
                    pool = self._slot_pool(slot)
                    self._install(pool, slot, job.sketch, sketch)
                    state = self._dispatch(engine, pool, job, sketch)
                except Exception:
                    # This slot is broken (worker died, install or
                    # submit failed): contain the damage to its own
                    # jobs and rebuild it lazily next round.
                    self._discard_slot(slot)
                    engine.count_executor_fallback(1)
                    engine.run_job_inline(job)
                    continue
                dispatched.append((job, sketch, slot, state))
        for job, sketch, slot, state in dispatched:
            self._collect(
                engine, job, sketch, state,
                on_broken=lambda slot=slot: self._discard_slot(slot),
            )

    def _discard_pool(self) -> None:
        # The shared-pool recovery hook, repurposed slot-wide: only
        # reachable through paths that already hold no slot state.
        with self._lock:
            for slot in range(self.workers):
                self._discard_slot(slot)
            self._shipped = {}
            self._unlink_segments()

    def close(self) -> None:
        with self._lock:
            pools = list(self._slot_pools)
            self._slot_pools = [None] * self.workers
            self._slot_shipped = [{} for _ in range(self.workers)]
            self._unlink_segments()
        for pool in pools:
            if pool is not None:
                pool.shutdown(wait=True)


def make_executor(config) -> ChunkExecutor:
    """Build the executor named by ``config.executor`` (validated)."""
    if config.executor == "inline":
        return InlineExecutor()
    if config.executor == "thread":
        return ThreadExecutor(workers=config.executor_workers)
    if config.executor == "process":
        cls = (
            StickyProcessExecutor
            if getattr(config, "sticky_routing", False)
            else ProcessExecutor
        )
        return cls(
            workers=config.executor_workers,
            start_method=config.mp_start_method,
            use_shm=getattr(config, "shm_snapshots", False),
        )
    raise SketchError(f"unknown executor {config.executor!r}")  # pragma: no cover


__all__ = [
    "EXECUTOR_NAMES",
    "MP_START_METHODS",
    "ChunkExecutor",
    "InlineExecutor",
    "ThreadExecutor",
    "ProcessExecutor",
    "StickyProcessExecutor",
    "make_executor",
]

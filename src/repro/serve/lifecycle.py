"""Background sketch lifecycle: drift watch, shadow refresh, hot swap.

The paper closes by calling for automation of "the training and
utilization of Deep Sketches in query optimizers".  This module is that
automation for the serving tier: a :class:`LifecycleManager` watches
every sketch an :class:`~repro.serve.engine.EstimationEngine` serves,
and when a sketch goes stale — its materialized samples drift away from
the live database (:func:`~repro.core.maintenance.detect_drift`), or
its q-error on a labelled probe set degrades — it

1. **shadow-trains** a replacement on the manager's own background
   thread, completely off the serving path (the engine's flush loop
   never blocks on training; serving continues on the old version
   throughout),
2. **saves** the replacement to the versioned
   :class:`~repro.serve.registry.SketchRegistry` (when one is
   attached), so the whole fleet can pull the same version and a bad
   refresh is one :meth:`rollback` away, and
3. **hot-swaps** it into the live engine via
   :meth:`~repro.serve.engine.EstimationEngine.swap_sketch` — zero
   dropped requests, zero stale answers, every in-flight request
   answered by exactly one snapshot version.

Failures never kill the watcher: every refresh attempt resolves to a
structured :class:`~repro.core.maintenance.RefreshResult` code, failed
sketches retry with capped exponential backoff (non-retryable codes
like ``spec_mismatch`` park the sketch as ``failed``), and a swap that
races :meth:`drop_sketch`/:meth:`close` records a structured
``swap_failed`` and leaves the previous version serving.

State is surfaced three ways: :meth:`state` (JSON-friendly),
``engine.stats()["lifecycle"]`` (the engine reads the attached
manager), and ``/v1/healthz`` (see :mod:`repro.serve.http`).  The
``repro lifecycle`` CLI drives the registry side (list/save/pin/
rollback) against the same on-disk layout.

Deviation note: the ISSUE sketches shadow training "on the existing
process executor"; that executor is estimation-only by design (workers
hold training-free snapshots — see :mod:`repro.serve.executor`), so
training runs on the lifecycle's own daemon thread instead.  The
serving property that matters — the engine loop never blocks on
training — holds either way.
"""

from __future__ import annotations

import threading
import time
from dataclasses import dataclass

import numpy as np

from ..errors import RegistryError, ReproError, SketchError
from ..core.maintenance import detect_drift, try_refresh_sketch

#: Lifecycle phases a sketch moves through, for state()/healthz readers.
PHASES = ("idle", "drift_check", "shadow_training", "swapping", "failed")


@dataclass(frozen=True)
class LifecycleConfig:
    """Knobs of the background lifecycle manager.

    ``check_interval_s`` paces the watcher thread; ``drift_threshold``
    overrides :func:`~repro.core.maintenance.detect_drift`'s per-sample-
    size default; ``qerror_threshold`` arms the serving-quality trigger
    (worst probe q-error above it marks the sketch stale; ``None``
    disables).  Refresh attempts use ``refresh_queries``/
    ``refresh_epochs``; failures retry with exponential backoff from
    ``backoff_s`` capped at ``backoff_cap_s``, giving up after
    ``max_retries`` consecutive failures (the sketch parks as
    ``failed`` until :meth:`LifecycleManager.reset` or a rollback).
    ``swap_timeout_s`` bounds the hot-swap barrier wait.
    """

    check_interval_s: float = 30.0
    drift_threshold: float | None = None
    qerror_threshold: float | None = None
    refresh_queries: int = 2000
    refresh_epochs: int = 5
    max_retries: int = 3
    backoff_s: float = 1.0
    backoff_cap_s: float = 60.0
    swap_timeout_s: float = 30.0

    def __post_init__(self):
        if self.check_interval_s <= 0:
            raise SketchError(
                f"check_interval_s must be positive, got {self.check_interval_s}"
            )
        if self.refresh_queries <= 0:
            raise SketchError(
                f"refresh_queries must be positive, got {self.refresh_queries}"
            )
        if self.refresh_epochs <= 0:
            raise SketchError(
                f"refresh_epochs must be positive, got {self.refresh_epochs}"
            )
        if self.max_retries < 0:
            raise SketchError(
                f"max_retries must be >= 0, got {self.max_retries}"
            )
        if self.backoff_s <= 0 or self.backoff_cap_s < self.backoff_s:
            raise SketchError(
                "backoff_s must be positive and backoff_cap_s >= backoff_s, "
                f"got {self.backoff_s}/{self.backoff_cap_s}"
            )
        if self.swap_timeout_s <= 0:
            raise SketchError(
                f"swap_timeout_s must be positive, got {self.swap_timeout_s}"
            )


class _SketchState:
    """Mutable per-sketch lifecycle record (guarded by the manager lock)."""

    __slots__ = (
        "phase",
        "last_drift",
        "last_check_at",
        "failures",
        "last_error",
        "last_code",
        "next_attempt_at",
        "refreshes",
        "last_refresh_at",
    )

    def __init__(self):
        self.phase = "idle"
        self.last_drift: float | None = None
        self.last_check_at: float | None = None
        self.failures = 0
        self.last_error: str | None = None
        self.last_code: str | None = None
        self.next_attempt_at: float | None = None
        self.refreshes = 0
        self.last_refresh_at: float | None = None

    def as_dict(self) -> dict:
        return {
            "phase": self.phase,
            "last_drift": self.last_drift,
            "last_check_at": self.last_check_at,
            "failures": self.failures,
            "last_error": self.last_error,
            "last_code": self.last_code,
            "next_attempt_at": self.next_attempt_at,
            "refreshes": self.refreshes,
            "last_refresh_at": self.last_refresh_at,
        }


class LifecycleManager:
    """Watch, shadow-refresh, and hot-swap the sketches of one engine.

    ``service`` is either an :class:`~repro.serve.engine.EstimationEngine`
    or a facade exposing one as ``.engine`` (both serving facades do).
    ``specs`` maps sketch name -> the
    :class:`~repro.workload.generator.WorkloadSpec` used to draw
    fine-tuning queries; only named sketches are managed.  ``probes``
    optionally maps sketch name -> a list of ``(query, true_cardinality)``
    pairs for the q-error trigger.

    ``refresh_fn``/``drift_fn`` are injectable for fault testing: the
    default refresh is :func:`~repro.core.maintenance.try_refresh_sketch`
    (never raises), the default drift check is
    :func:`~repro.core.maintenance.detect_drift`.

    Construction attaches the manager to the engine
    (``engine.lifecycle = self``) so ``stats()``/healthz expose
    :meth:`state`; :meth:`start` spawns the watcher thread,
    :meth:`run_once` drives one synchronous pass (tests, benches, cron).
    """

    def __init__(
        self,
        service,
        db,
        specs: dict,
        registry=None,
        config: LifecycleConfig | None = None,
        seed: int | None = None,
        probes: dict | None = None,
        refresh_fn=None,
        drift_fn=None,
    ):
        self.engine = getattr(service, "engine", service)
        self.db = db
        self.specs = dict(specs)
        self.registry = registry
        self.config = config or LifecycleConfig()
        self.seed = seed
        self.probes = dict(probes or {})
        self._refresh_fn = refresh_fn or try_refresh_sketch
        self._drift_fn = drift_fn or detect_drift
        self._lock = threading.Lock()
        self._states = {name: _SketchState() for name in self.specs}
        self._thread: threading.Thread | None = None
        self._stop = threading.Event()
        self._rollbacks = 0
        self._attempts = 0  # varies the refresh seed across retries
        self.engine.lifecycle = self

    # ------------------------------------------------------------------
    # watcher thread
    # ------------------------------------------------------------------
    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> None:
        """Start the background watcher (idempotent)."""
        with self._lock:
            if self._thread is not None and self._thread.is_alive():
                return
            self._stop.clear()
            self._thread = threading.Thread(
                target=self._watch, name="sketch-lifecycle", daemon=True
            )
            self._thread.start()

    def stop(self, timeout: float | None = 30.0) -> None:
        """Stop the watcher; a refresh in progress finishes first."""
        self._stop.set()
        thread = self._thread
        if thread is not None and thread.is_alive():
            thread.join(timeout)

    def _watch(self) -> None:
        while not self._stop.is_set():
            try:
                self.run_once()
            except Exception:
                # The watcher never dies: run_once already folds expected
                # failures into structured per-sketch state, so anything
                # arriving here is a bug — skip the cycle and keep
                # watching rather than silently stopping maintenance.
                pass
            self._stop.wait(self.config.check_interval_s)

    # ------------------------------------------------------------------
    # one maintenance pass
    # ------------------------------------------------------------------
    def run_once(self) -> dict:
        """Check every managed sketch once; refresh + swap the stale ones.

        Returns ``{name: phase-after-pass}`` — handy for benches and
        tests driving the lifecycle synchronously.
        """
        outcome = {}
        for name in sorted(self.specs):
            outcome[name] = self._check_one(name)
        return outcome

    def _check_one(self, name: str) -> str:
        state = self._states[name]
        now = time.monotonic()
        with self._lock:
            if state.phase == "failed" and state.next_attempt_at is None:
                return state.phase  # parked (non-retryable / retries spent)
            if state.next_attempt_at is not None and now < state.next_attempt_at:
                return state.phase  # backing off
            state.phase = "drift_check"
            state.last_check_at = time.time()
        try:
            sketch = self.engine.manager.get_sketch(name)
        except SketchError as exc:
            # Dropped since registration: structured record, keep watching
            # (a re-registered sketch under this name resumes management).
            self._record_failure(state, str(exc), "missing_sketch", now)
            return state.phase
        try:
            stale, _drift = self._is_stale(state, sketch)
        except Exception as exc:
            # A drift check against a half-migrated database (renamed
            # table, new column) must not kill maintenance for good.
            self._record_failure(
                state, f"drift check failed: {exc!r}", "drift_check_failed", now
            )
            return state.phase
        if not stale:
            with self._lock:
                state.phase = "idle"
            return state.phase
        return self._refresh_and_swap(name, state, sketch, now)

    def _is_stale(self, state: _SketchState, sketch) -> tuple[bool, float]:
        report = self._drift_fn(
            sketch,
            self.db,
            seed=self.seed,
            threshold=self.config.drift_threshold,
        )
        drift = report.max_drift()
        with self._lock:
            state.last_drift = drift
        if report.is_stale():
            return True, drift
        threshold = self.config.qerror_threshold
        probes = self.probes.get(sketch.name)
        if threshold is not None and probes:
            queries = [q for q, _ in probes]
            truths = np.asarray([c for _, c in probes], dtype=float)
            estimates = np.asarray(sketch.estimate_many(queries), dtype=float)
            qerror = float(
                np.max(np.maximum(estimates / truths, truths / estimates))
            )
            if qerror > threshold:
                return True, drift
        return False, drift

    def _refresh_and_swap(self, name, state, sketch, now) -> str:
        with self._lock:
            state.phase = "shadow_training"
            self._attempts += 1
            attempt_seed = None if self.seed is None else self.seed + self._attempts
        result = self._refresh_fn(
            sketch,
            self.db,
            self.specs[name],
            n_queries=self.config.refresh_queries,
            epochs=self.config.refresh_epochs,
            seed=attempt_seed,
        )
        if not getattr(result, "ok", False):
            error = getattr(result, "error", None) or "refresh returned no sketch"
            code = getattr(result, "code", None) or "internal"
            retryable = getattr(result, "retryable", True)
            self._record_failure(
                state, error, code, time.monotonic(), retryable=retryable
            )
            return state.phase
        replacement = result.sketch
        if self.registry is not None:
            try:
                self.registry.save(
                    replacement, note=f"shadow refresh of {name!r}"
                )
            except (RegistryError, OSError) as exc:
                # The replacement is good but unpublishable: swapping it
                # in would fork this node's version away from the fleet.
                self._record_failure(
                    state, str(exc), "registry_save_failed", time.monotonic()
                )
                return state.phase
        with self._lock:
            state.phase = "swapping"
        try:
            self.engine.swap_sketch(
                name, replacement, timeout=self.config.swap_timeout_s
            )
        except ReproError as exc:
            # Swap raced a drop/close (or timed out draining): previous
            # version keeps serving; structured record, retry later.
            self._record_failure(
                state, str(exc), "swap_failed", time.monotonic()
            )
            return state.phase
        with self._lock:
            state.phase = "idle"
            state.failures = 0
            state.last_error = None
            state.last_code = None
            state.next_attempt_at = None
            state.refreshes += 1
            state.last_refresh_at = time.time()
        return state.phase

    def _record_failure(
        self, state, error: str, code: str, now: float, retryable: bool = True
    ) -> None:
        with self._lock:
            state.failures += 1
            state.last_error = error
            state.last_code = code
            if not retryable or state.failures > self.config.max_retries:
                state.phase = "failed"
                state.next_attempt_at = None  # parked until reset()/rollback
            else:
                state.phase = "failed"
                backoff = min(
                    self.config.backoff_s * (2.0 ** (state.failures - 1)),
                    self.config.backoff_cap_s,
                )
                state.next_attempt_at = now + backoff

    def reset(self, name: str) -> None:
        """Clear a parked sketch's failure state so checks resume."""
        state = self._states[name]
        with self._lock:
            state.phase = "idle"
            state.failures = 0
            state.next_attempt_at = None

    # ------------------------------------------------------------------
    # rollback
    # ------------------------------------------------------------------
    def rollback(self, name: str) -> int:
        """Registry rollback + hot swap; returns the restored version.

        Re-activates the pinned (or previous) version in the registry,
        loads it with checksum verification, and swaps it into the live
        engine.  A corrupt or missing blob raises
        :class:`~repro.errors.RegistryError` *before* anything touches
        the engine — the currently serving version stays live.
        """
        if self.registry is None:
            raise RegistryError(
                f"cannot roll back {name!r}: no registry attached"
            )
        state = self._states.get(name)
        version = self.registry.rollback(name)
        try:
            restored = self.registry.load(name, version)
        except RegistryError:
            if state is not None:
                self._record_failure(
                    state,
                    f"rollback to v{version} failed to load",
                    "rollback_failed",
                    time.monotonic(),
                )
            raise
        self.engine.swap_sketch(
            name, restored, timeout=self.config.swap_timeout_s
        )
        with self._lock:
            self._rollbacks += 1
            if state is not None:
                state.phase = "idle"
                state.failures = 0
                state.next_attempt_at = None
                state.last_refresh_at = time.time()
        return version

    # ------------------------------------------------------------------
    # state surface
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """JSON-friendly lifecycle snapshot (stats()/healthz read this)."""
        with self._lock:
            sketches = {
                name: state.as_dict() for name, state in self._states.items()
            }
            rollbacks = self._rollbacks
        return {
            "running": self.running,
            "check_interval_s": self.config.check_interval_s,
            "rollbacks": rollbacks,
            "sketches": sketches,
        }


__all__ = [
    "PHASES",
    "LifecycleConfig",
    "LifecycleManager",
]

"""Versioned on-disk sketch registry: save/load/list/pin/rollback.

A fleet of serving front doors needs one answer to "which model is
live?".  The registry stores every saved :class:`~repro.core.sketch.
DeepSketch` as an immutable, checksummed blob under a monotonically
increasing per-sketch version number, and keeps a single ``manifest.json``
naming the *active* version per sketch.  Front doors (or the lifecycle
manager, :mod:`repro.serve.lifecycle`) pull whatever the manifest says
is active, so the fleet converges on one version; a bad refresh is one
:meth:`SketchRegistry.rollback` away.

On-disk layout::

    <root>/
      manifest.json               # atomic (write temp + os.replace)
      <sketch_name>/
        v000001.sketch            # DeepSketch.to_bytes() payload
        v000002.sketch

Manifest shape (all JSON-native)::

    {"registry_version": 1,
     "sketches": {
        "<name>": {"active": 2, "pinned": null, "rollbacks": 0,
                   "versions": {"1": {"path": ..., "sha256": ...,
                                      "size": ..., "created_at": ...,
                                      "note": ...}, ...}}}}

Every blob is verified against its manifest SHA-256 on load, so a
corrupt or truncated file surfaces as a structured
:class:`~repro.errors.RegistryError` instead of a garbage model.
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path

from ..errors import RegistryError, SketchError
from ..core.sketch import DeepSketch

MANIFEST_NAME = "manifest.json"
REGISTRY_FORMAT_VERSION = 1


def _sha256(payload: bytes) -> str:
    return hashlib.sha256(payload).hexdigest()


class SketchRegistry:
    """Checksummed, versioned store of serialized sketches.

    Not safe for concurrent *writers* (one lifecycle manager owns the
    registry); any number of concurrent readers may :meth:`load` while
    a writer saves, because blobs are immutable once written and the
    manifest is replaced atomically.
    """

    def __init__(self, root: str | Path):
        self.root = Path(root)
        self.root.mkdir(parents=True, exist_ok=True)
        self._manifest_path = self.root / MANIFEST_NAME
        if not self._manifest_path.exists():
            self._write_manifest(
                {"registry_version": REGISTRY_FORMAT_VERSION, "sketches": {}}
            )

    # ------------------------------------------------------------------
    # manifest plumbing
    # ------------------------------------------------------------------

    def _read_manifest(self) -> dict:
        try:
            with open(self._manifest_path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except (OSError, json.JSONDecodeError) as exc:
            raise RegistryError(
                f"registry manifest at {self._manifest_path} is unreadable: {exc}"
            ) from exc
        if not isinstance(manifest, dict) or "sketches" not in manifest:
            raise RegistryError(
                f"registry manifest at {self._manifest_path} is malformed"
            )
        if manifest.get("registry_version") != REGISTRY_FORMAT_VERSION:
            raise RegistryError(
                "unsupported registry format version "
                f"{manifest.get('registry_version')!r} "
                f"(this build supports {REGISTRY_FORMAT_VERSION})"
            )
        return manifest

    def _write_manifest(self, manifest: dict) -> None:
        tmp = self._manifest_path.with_suffix(".json.tmp")
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(manifest, fh, indent=2, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._manifest_path)

    def _entry(self, manifest: dict, name: str) -> dict:
        try:
            return manifest["sketches"][name]
        except KeyError:
            raise RegistryError(f"unknown sketch {name!r} in registry") from None

    # ------------------------------------------------------------------
    # write side
    # ------------------------------------------------------------------

    def save(self, sketch: DeepSketch, note: str = "", activate: bool = True) -> int:
        """Serialize ``sketch`` as the next version; return that version.

        The assigned version is stamped into
        ``sketch.metadata["registry_version"]`` *before* serialization —
        a deliberate mutation so the blob itself (and every snapshot cut
        from the loaded sketch) carries its fleet-comparable version.
        With ``activate`` (default) the new version becomes the one the
        fleet pulls; pass ``activate=False`` to stage a candidate.
        """
        manifest = self._read_manifest()
        entry = manifest["sketches"].setdefault(
            sketch.name,
            {"active": None, "pinned": None, "rollbacks": 0, "versions": {}},
        )
        version = 1 + max((int(v) for v in entry["versions"]), default=0)
        sketch.metadata["registry_version"] = version
        try:
            payload = sketch.to_bytes()
        except SketchError as exc:
            raise RegistryError(f"cannot serialize {sketch.name!r}: {exc}") from exc

        blob_rel = Path(sketch.name) / f"v{version:06d}.sketch"
        blob_path = self.root / blob_rel
        blob_path.parent.mkdir(parents=True, exist_ok=True)
        tmp = blob_path.with_suffix(".sketch.tmp")
        with open(tmp, "wb") as fh:
            fh.write(payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, blob_path)

        entry["versions"][str(version)] = {
            "path": str(blob_rel),
            "sha256": _sha256(payload),
            "size": len(payload),
            "created_at": time.time(),
            "note": str(note),
        }
        if activate:
            entry["active"] = version
        self._write_manifest(manifest)
        return version

    def activate(self, name: str, version: int) -> None:
        """Mark ``version`` as the one the fleet should pull."""
        manifest = self._read_manifest()
        entry = self._entry(manifest, name)
        if str(int(version)) not in entry["versions"]:
            raise RegistryError(f"sketch {name!r} has no version {version}")
        entry["active"] = int(version)
        self._write_manifest(manifest)

    def pin(self, name: str, version: int) -> None:
        """Mark ``version`` as the known-good rollback target."""
        manifest = self._read_manifest()
        entry = self._entry(manifest, name)
        if str(int(version)) not in entry["versions"]:
            raise RegistryError(f"sketch {name!r} has no version {version}")
        entry["pinned"] = int(version)
        self._write_manifest(manifest)

    def unpin(self, name: str) -> None:
        manifest = self._read_manifest()
        entry = self._entry(manifest, name)
        entry["pinned"] = None
        self._write_manifest(manifest)

    def rollback(self, name: str) -> int:
        """Re-activate the pinned version (or the one before active).

        Returns the version rolled back *to*.  Raises
        :class:`RegistryError` when there is nothing to roll back to.
        """
        manifest = self._read_manifest()
        entry = self._entry(manifest, name)
        target = entry.get("pinned")
        if target is None:
            active = entry.get("active")
            earlier = [
                int(v)
                for v in entry["versions"]
                if active is None or int(v) < int(active)
            ]
            if not earlier:
                raise RegistryError(
                    f"sketch {name!r} has no pinned version and no version "
                    "earlier than the active one; nothing to roll back to"
                )
            target = max(earlier)
        entry["active"] = int(target)
        entry["rollbacks"] = int(entry.get("rollbacks", 0)) + 1
        self._write_manifest(manifest)
        return int(target)

    # ------------------------------------------------------------------
    # read side
    # ------------------------------------------------------------------

    def list_sketches(self) -> list[str]:
        return sorted(self._read_manifest()["sketches"])

    def versions(self, name: str) -> dict[int, dict]:
        """version -> manifest record (path, sha256, size, created_at, note)."""
        entry = self._entry(self._read_manifest(), name)
        return {int(v): dict(rec) for v, rec in sorted(entry["versions"].items())}

    def active_version(self, name: str) -> int | None:
        entry = self._entry(self._read_manifest(), name)
        return entry.get("active")

    def pinned(self, name: str) -> int | None:
        entry = self._entry(self._read_manifest(), name)
        return entry.get("pinned")

    def rollback_count(self, name: str) -> int:
        entry = self._entry(self._read_manifest(), name)
        return int(entry.get("rollbacks", 0))

    def load(self, name: str, version: int | None = None) -> DeepSketch:
        """Load a version (default: the active one), verifying its checksum.

        A missing blob, checksum mismatch, or undeserializable payload
        raises :class:`RegistryError` — the caller keeps whatever it was
        serving before.
        """
        manifest = self._read_manifest()
        entry = self._entry(manifest, name)
        if version is None:
            version = entry.get("active")
            if version is None:
                raise RegistryError(f"sketch {name!r} has no active version")
        record = entry["versions"].get(str(int(version)))
        if record is None:
            raise RegistryError(f"sketch {name!r} has no version {version}")
        blob_path = self.root / record["path"]
        try:
            payload = blob_path.read_bytes()
        except OSError as exc:
            raise RegistryError(
                f"sketch {name!r} v{version} blob missing at {blob_path}: {exc}"
            ) from exc
        digest = _sha256(payload)
        if digest != record["sha256"]:
            raise RegistryError(
                f"sketch {name!r} v{version} failed checksum verification "
                f"(manifest {record['sha256'][:12]}…, file {digest[:12]}…); "
                "the blob is corrupt — refusing to load it"
            )
        try:
            return DeepSketch.from_bytes(payload)
        except Exception as exc:
            raise RegistryError(
                f"sketch {name!r} v{version} payload failed to deserialize: {exc}"
            ) from exc

    def describe(self) -> dict:
        """JSON-friendly summary: name -> {active, pinned, rollbacks, versions}."""
        manifest = self._read_manifest()
        out = {}
        for name, entry in sorted(manifest["sketches"].items()):
            out[name] = {
                "active": entry.get("active"),
                "pinned": entry.get("pinned"),
                "rollbacks": int(entry.get("rollbacks", 0)),
                "versions": sorted(int(v) for v in entry["versions"]),
            }
        return out

"""The stdlib-only HTTP front door over the estimation engine.

:class:`SketchHTTPServer` binds the versioned wire protocol
(:mod:`repro.serve.protocol`) to a ``ThreadingHTTPServer``.  The
ROADMAP promised that "a server binding is mostly request/response
marshalling" once the engine was transport-agnostic — this module is
that binding, and nothing more: every request is marshalled onto an
in-process :class:`~repro.serve.async_server.AsyncSketchServer`
(engine + background flush loop) and the response marshalled back.

Because ``ThreadingHTTPServer`` handles each connection on its own
thread and the engine's ``submit`` is thread-safe, **concurrent HTTP
clients batch together**: their requests land in the same per-sketch
buffers, flush as shared micro-batches under the engine's triggers,
dedup onto shared computations, and hit the same result cache.  The
network front door therefore inherits every serving property of the
in-process facades — admission control, deadlines, executors,
telemetry — with zero engine changes.

Endpoints (all JSON, schemas in :mod:`repro.serve.protocol`):

=====================  ====================================================
``POST /v1/estimate``        one request envelope -> one response envelope
``POST /v1/estimate_batch``  batch envelope -> batch response envelope
``POST /v1/plan``            one SQL query -> join-order advice (every
                             connected subplan estimated in one engine
                             batch; :mod:`repro.serve.plan`)
``GET /v1/stats``            the engine's ``stats_summary()`` snapshot,
                             byte-for-byte the shape local callers get
``GET /v1/healthz``          liveness + protocol version + sketch names
=====================  ====================================================

Transport-level failures (malformed JSON, bad envelope, unknown path,
closed server) answer with 4xx/5xx and a minimal
:func:`~repro.serve.protocol.error_to_wire` body; *request-level*
failures (parse/route/vocab/shed/deadline) are **HTTP 200** with
``ok=false`` and a structured ``code`` — the wire mirrors the
in-process contract, where a response is always a value, never an
exception.

Typical use::

    with SketchHTTPServer(manager, host="0.0.0.0", port=8080) as server:
        print("serving on", server.url)
        server.join()            # until another thread close()s it

or from the CLI: ``repro serve sketch.bin --http --port 8080``.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from ..errors import ProtocolError, SketchError
from ..demo.manager import SketchManager
from .async_server import AsyncSketchServer
from .engine import ServeConfig
from .feature_cache import FeatureCache
from .wire import WIRE_VERSION, BinaryFrameServer
from . import protocol

#: Largest accepted request body, in bytes.  A batch of several
#: thousand SQL strings fits comfortably; a runaway client does not.
MAX_BODY_BYTES = 16 * 1024 * 1024


def healthz_payload(service, transports: dict | None = None) -> dict:
    """The ``GET /v1/healthz`` body for any served ``SketchService``.

    ``sketches`` (sorted names) and ``pending`` are the liveness core;
    ``tables`` maps each sketch to the tables it covers — the additive
    v1 extension a :class:`~repro.serve.gateway.SketchGateway` reads to
    route without holding the models.  Services that are not
    manager-backed (the gateway itself) provide ``describe_sketches()``
    returning the same name -> tables map.

    Two further additive extensions serve the sketch lifecycle
    (:mod:`repro.serve.lifecycle`): ``versions`` maps each sketch to
    ``{"token", "registry_version"}`` (the fleet judges version
    consistency on ``registry_version`` — tokens are process-local),
    and ``lifecycle`` carries the attached
    :class:`~repro.serve.lifecycle.LifecycleManager`'s :meth:`state`
    (``None`` when no manager is attached).  Non-engine services
    provide the matching ``describe_versions()`` hook.

    ``transports`` is the capability field clients negotiate on: a map
    from transport name to its parameters.  ``"json"`` (this HTTP
    surface, always present) and — when the front door runs a
    :class:`~repro.serve.wire.BinaryFrameServer` —
    ``"binary": {"host", "port", "wire_version"}``.  Clients that
    don't read the field keep speaking JSON; nothing is ever removed.

    ``plan`` advertises the plan advisory capability
    (``POST /v1/plan``, :mod:`repro.serve.plan`): ``true`` when the
    served service answers :meth:`plan`.  Clients and gateways
    feature-detect on it instead of probing with a request.
    """
    describe = getattr(service, "describe_sketches", None)
    if describe is not None:
        tables = {name: sorted(t) for name, t in describe().items()}
    else:
        manager = service.manager
        tables = {}
        for name in manager.list_sketches():
            try:
                tables[name] = sorted(manager.get_sketch(name).tables)
            except SketchError:
                continue  # dropped between list and get; not served

    engine = getattr(service, "engine", None)
    describe_versions = getattr(service, "describe_versions", None)
    if describe_versions is None and engine is not None:
        describe_versions = engine.describe_versions
    versions = {} if describe_versions is None else describe_versions()
    lifecycle = getattr(engine, "lifecycle", None)

    return {
        "status": "ok",
        "protocol_version": protocol.PROTOCOL_VERSION,
        "sketches": sorted(tables),
        "tables": tables,
        "pending": service.pending,
        "versions": versions,
        "lifecycle": None if lifecycle is None else lifecycle.state(),
        "transports": dict(transports) if transports else {"json": {}},
        "plan": callable(getattr(service, "plan", None)),
    }


class _Handler(BaseHTTPRequestHandler):
    """One request/response marshalling pass; no serving logic here."""

    # Set by SketchHTTPServer on the server class it instantiates.  Any
    # SketchService works; the classic single-node front door binds an
    # AsyncSketchServer, a gateway node binds a SketchGateway.
    service: "AsyncSketchServer"
    quiet: bool = True
    # The owning front door's transport capabilities, advertised in
    # /v1/healthz for client/gateway negotiation.
    transports: dict = {"json": {}}

    # HTTP/1.1 keep-alive for clients that reuse connections (curl with
    # several URLs, requests.Session, http.client).  The stdlib-urllib
    # SDK opens one connection per request and is unaffected.
    protocol_version = "HTTP/1.1"

    # -- plumbing -------------------------------------------------------
    def log_message(self, format, *args):  # noqa: A002 - stdlib signature
        if not self.quiet:
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: dict | list) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        if self.close_connection:
            # Closing without announcing it would leave an HTTP/1.1
            # client waiting on a connection it believes is reusable.
            self.send_header("Connection", "close")
        self.end_headers()
        self.wfile.write(body)

    def _send_error_json(self, status: int, message: str, code: str) -> None:
        # Error paths may leave an unread request body on the socket (an
        # unknown POST path, an oversized body we refused to read);
        # answering keep-alive with those bytes pending would desync the
        # connection and misparse the client's *next* request.  Closing
        # is always safe, and errors are rare enough not to optimize.
        self.close_connection = True
        self._send_json(status, protocol.error_to_wire(message, code))

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ProtocolError("request body is empty")
        if length > MAX_BODY_BYTES:
            raise ProtocolError(
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit"
            )
        raw = self.rfile.read(length)
        try:
            return json.loads(raw)
        except ValueError as exc:
            raise ProtocolError(f"request body is not valid JSON: {exc}") from exc

    # -- endpoints ------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/v1/estimate":
                payload = self._read_json()
                sql, sketch = protocol.estimate_request_from_wire(payload)
                t0 = time.perf_counter()
                response = self.service.submit(sql, sketch).result()
                server_ms = (time.perf_counter() - t0) * 1000.0
                self._send_json(
                    200, protocol.response_to_wire(response, server_ms)
                )
            elif self.path == "/v1/estimate_batch":
                payload = self._read_json()
                sqls, sketch = protocol.batch_request_from_wire(payload)
                t0 = time.perf_counter()
                futures = self.service.submit_many(sqls, sketch)
                responses = [future.result() for future in futures]
                server_ms = (time.perf_counter() - t0) * 1000.0
                self._send_json(
                    200, protocol.batch_response_to_wire(responses, server_ms)
                )
            elif self.path == "/v1/plan":
                payload = self._read_json()
                sql, sketch = protocol.plan_request_from_wire(payload)
                t0 = time.perf_counter()
                response = self.service.plan(sql, sketch)
                server_ms = (time.perf_counter() - t0) * 1000.0
                self._send_json(
                    200, protocol.plan_response_to_wire(response, server_ms)
                )
            else:
                self._send_error_json(
                    404, f"unknown endpoint {self.path!r}", "not_found"
                )
        except ProtocolError as exc:
            self._send_error_json(400, str(exc), "protocol")
        except Exception as exc:  # pragma: no cover - defensive
            # submit() raising (closed service) or a marshalling bug:
            # the transport must answer something structured.
            self._send_error_json(503, f"service unavailable: {exc}", "internal")

    def do_GET(self) -> None:  # noqa: N802 - stdlib naming
        try:
            if self.path == "/v1/stats":
                # Exactly stats_summary()'s shape — operators and the
                # SDK read the same JSON local callers get.
                self._send_json(200, self.service.stats_summary())
            elif self.path == "/v1/healthz":
                self._send_json(
                    200, healthz_payload(self.service, self.transports)
                )
            else:
                self._send_error_json(
                    404, f"unknown endpoint {self.path!r}", "not_found"
                )
        except Exception as exc:  # pragma: no cover - defensive
            self._send_error_json(503, f"service unavailable: {exc}", "internal")


class SketchHTTPServer:
    """The network front door: a threaded HTTP server over the engine.

    Construction binds the socket (``port=0`` picks an ephemeral port —
    read :attr:`url` / :attr:`port` for the bound address) but does not
    serve; :meth:`start` (or entering the context manager) launches the
    acceptor thread.  All serving behavior is the wrapped
    :class:`AsyncSketchServer`'s, configured by the same
    :class:`~repro.serve.engine.ServeConfig` as the in-process facades
    — executors, admission control, and deadlines apply to HTTP traffic
    unchanged.

    :meth:`close` is idempotent and drains: the HTTP acceptor stops
    first (no new requests), then the inner service drains every
    accepted request, so no in-flight HTTP client is ever dropped
    without a response.

    ``binary=True`` (the default) additionally runs a
    :class:`~repro.serve.wire.BinaryFrameServer` on an ephemeral port
    of the same host — the zero-copy estimate path — and advertises it
    under ``transports.binary`` in ``/v1/healthz`` so SDK clients and
    gateways negotiate onto it.  JSON remains the control surface
    (stats/healthz) and the fallback transport either way.
    """

    def __init__(
        self,
        manager: SketchManager | None = None,
        config: ServeConfig | None = None,
        *,
        service=None,
        host: str = "127.0.0.1",
        port: int = 8080,
        feature_cache: FeatureCache | None = None,
        quiet: bool = True,
        binary: bool = True,
    ):
        # Two construction modes: a manager (the front door builds and
        # owns an AsyncSketchServer over it — the classic single-node
        # path) or a ready-made ``service`` (any SketchService, e.g. a
        # SketchGateway — the front door only marshals for it).  Either
        # way the service is closed with the server.
        if (manager is None) == (service is None):
            raise SketchError(
                "pass exactly one of a SketchManager or service="
            )
        if service is None:
            self.service = AsyncSketchServer(manager, config, feature_cache)
        else:
            if config is not None or feature_cache is not None:
                raise SketchError(
                    "config/feature_cache belong to the wrapped service "
                    "when service= is given"
                )
            self.service = service

        self._binary: BinaryFrameServer | None = None
        transports: dict = {"json": {}}
        if binary:
            self._binary = BinaryFrameServer(self.service, host=host, port=0)
            transports["binary"] = {
                "host": self._binary.host,
                "port": self._binary.port,
                "wire_version": WIRE_VERSION,
            }

        # A per-instance handler subclass so several servers (tests,
        # shards) never share service state through class attributes.
        handler = type(
            "_BoundHandler",
            (_Handler,),
            {
                "service": self.service,
                "quiet": quiet,
                "transports": transports,
            },
        )
        self._httpd = ThreadingHTTPServer((host, port), handler)
        self._httpd.daemon_threads = True
        self._thread: threading.Thread | None = None
        self._closed = False

    # -- address --------------------------------------------------------
    @property
    def host(self) -> str:
        return self._httpd.server_address[0]

    @property
    def port(self) -> int:
        return self._httpd.server_address[1]

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}"

    @property
    def binary_port(self) -> int | None:
        """The binary transport's port (``None`` when ``binary=False``)."""
        return None if self._binary is None else self._binary.port

    # -- lifecycle ------------------------------------------------------
    def start(self) -> "SketchHTTPServer":
        """Start the acceptor thread and the flush loop (idempotent)."""
        if self._closed:
            raise SketchError("server is closed")
        start = getattr(self.service, "start", None)
        if start is not None:  # gateways and remote clients have no loop
            start()
        if self._binary is not None:
            self._binary.start()
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="sketch-serve-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def join(self, timeout: float | None = None) -> None:
        """Block until the acceptor thread exits (a ``close()`` from
        another thread, typically a signal handler)."""
        if self._thread is not None:
            self._thread.join(timeout)

    def close(self) -> None:
        """Stop accepting, drain the engine, release everything.

        Safe in every lifecycle state: ``shutdown()`` blocks on an event
        only ``serve_forever()`` sets, so it must be skipped when the
        acceptor thread never started (a constructed-but-unstarted
        server would deadlock here forever).
        """
        if self._closed:
            return
        self._closed = True
        if self._binary is not None:
            self._binary.close()
        if self._thread is not None:
            self._httpd.shutdown()
            self._thread.join(5.0)
        self._httpd.server_close()
        self.service.close()

    def stats_summary(self) -> dict:
        return self.service.stats_summary()

    def __enter__(self) -> "SketchHTTPServer":
        return self.start()

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"SketchHTTPServer(url={self.url!r}, {state})"


__all__ = ["MAX_BODY_BYTES", "SketchHTTPServer", "healthz_payload"]

"""`SketchService` — the one public estimation API, local or remote.

Three interchangeable implementations stand behind this protocol:

* :class:`~repro.serve.server.SketchServer` — in-process, sync facade
  (caller-driven flushes);
* :class:`~repro.serve.async_server.AsyncSketchServer` — in-process,
  background flush loop;
* :class:`~repro.serve.client.RemoteSketchServer` — the client SDK,
  speaking the versioned wire protocol
  (:mod:`repro.serve.protocol`) to an HTTP front door
  (:mod:`repro.serve.http`).

Swapping local serving for remote serving is a one-line change::

    service = SketchServer(manager)                  # in-process, sync
    service = AsyncSketchServer(manager)             # in-process, loop
    service = RemoteSketchServer("http://host:8080") # over the wire

    with service:
        response = service.estimate("SELECT COUNT(*) FROM title t ...")
        futures = service.submit_many(stream)
        print(service.stats_summary())

The shared surface:

``submit(request, sketch=None) -> Future[EstimateResponse]``
    Enqueue one request.  The future resolves with a *structured*
    :class:`~repro.serve.engine.EstimateResponse` — never an exception
    for per-request failures (parse, route, vocab, shed, deadline all
    arrive as ``ok=False`` responses with a
    :data:`~repro.serve.engine.RESPONSE_CODES` code).  *When* it
    resolves is the implementation's batching policy: at the next
    caller-driven flush (sync facade), within ``~max_wait_ms`` (async
    facade), or when the HTTP round trip completes (remote).
``submit_many(requests, sketch=None) -> list[Future[EstimateResponse]]``
    Amortized intake for a batch (one lock acquisition in process, one
    wire round trip remotely).
``estimate(request, sketch=None) -> EstimateResponse``
    The blocking one-shot convenience: submit and wait.
``serve(requests, sketch=None) -> list[EstimateResponse]``
    Submit a whole stream and block for every response, in submission
    order.
``plan(request, sketch=None) -> PlanResponse``
    Join-order advice (:mod:`repro.serve.plan`): every connected
    subplan of the query estimated as **one** batch, the answers
    injected into the DP enumerator under C_out.  Structured
    :class:`~repro.serve.plan.PlanResponse` values on every failure
    path, mirroring the estimate contract.
``stats_summary() -> dict``
    The engine's one-call JSON telemetry snapshot
    (:meth:`~repro.serve.engine.EstimationEngine.stats`); remotely this
    is ``GET /v1/stats``, byte-for-byte the same shape.
``close()`` / context manager
    Drain and release (executors, loops, HTTP connections).  Closing
    is idempotent; every accepted request is answered first.

The protocol is :func:`typing.runtime_checkable`, so transport-generic
code can assert ``isinstance(service, SketchService)`` — structural
conformance only; per-method semantics are this module's contract.
"""

from __future__ import annotations

from concurrent.futures import Future
from typing import TYPE_CHECKING, Iterable, Protocol, Sequence, runtime_checkable

from ..workload.query import Query
from .engine import EstimateResponse

if TYPE_CHECKING:  # pragma: no cover - annotation only
    from .plan import PlanResponse


@runtime_checkable
class SketchService(Protocol):
    """Structural protocol of every estimation service (see module docs)."""

    def submit(
        self, request: Query | str, sketch: str | None = None
    ) -> "Future[EstimateResponse]": ...

    def submit_many(
        self, requests: Sequence[Query | str], sketch: str | None = None
    ) -> "list[Future[EstimateResponse]]": ...

    def estimate(
        self, request: Query | str, sketch: str | None = None
    ) -> EstimateResponse: ...

    def serve(
        self, requests: Iterable[Query | str], sketch: str | None = None
    ) -> list[EstimateResponse]: ...

    def plan(
        self, request: Query | str, sketch: str | None = None
    ) -> "PlanResponse": ...

    def stats_summary(self) -> dict: ...

    def close(self) -> None: ...

    def __enter__(self) -> "SketchService": ...

    def __exit__(self, *exc_info) -> None: ...


__all__ = ["SketchService"]

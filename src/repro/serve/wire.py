"""Binary wire transport: length-prefixed frames for protocol v1.

The JSON/HTTP front door (:mod:`repro.serve.http`) is the compatibility
transport; this module is the fast one.  Measured on the serving bench,
a JSON round trip costs ~1.2ms/request in framing alone — HTTP request
lines, header parsing, and connection churn — versus ~25µs for the same
estimate in-process.  The binary transport removes all of it: one
persistent TCP connection per client slot, each message a single
length-prefixed frame whose payload is a compact struct encoding of the
*same* protocol v1 envelope (:mod:`repro.serve.protocol`), and exact
round-trip identity preserved — ``decode_response(encode_response(r))``
reconstructs precisely the :class:`~repro.serve.engine.EstimateResponse`
the engine produced, field for field, for every outcome class.

Frame layout (all integers big-endian)::

    +------+---------+------+-----------+----------------+
    | "SB" | version | kind | length u32| payload bytes  |
    +------+---------+------+-----------+----------------+
      2B      1B       1B       4B         `length` B

``version`` is :data:`WIRE_VERSION` and moves with
:data:`repro.serve.protocol.PROTOCOL_VERSION`: a receiver rejects
frames from any other version (or a wrong magic) with
:class:`~repro.errors.ProtocolError` before touching the payload —
explicit version skew beats silent misparses.  ``length`` is bounded by
:data:`MAX_FRAME_BYTES`; an oversized prefix is refused without reading
the payload.  A connection that dies mid-frame raises
:class:`TruncatedFrame` (a :class:`~repro.errors.ProtocolError`), which
the client SDK maps onto the :class:`~repro.errors.RemoteServerError`
taxonomy — no hangs, no partially-decoded responses.

Payload encodings are *specialized* per envelope (not a generic
serializer): strings travel as u32-length-prefixed UTF-8 (``0xFFFFFFFF``
encodes ``None``), floats as IEEE f64 (lossless — parity with the
in-process value is exact), the closed ``code`` set as one enum byte.
Negotiation: a front door running a :class:`BinaryFrameServer`
advertises it under ``transports.binary.port`` in ``GET /v1/healthz``;
clients that see the capability switch ``estimate``/``estimate_batch``
to frames and keep JSON for the control surface (stats/healthz) and as
the fallback when the capability is absent.
"""

from __future__ import annotations

import socket
import struct
import threading
import time

from ..errors import ProtocolError
from ..workload.query import Query
from .engine import EstimateResponse, RESPONSE_CODES
from .plan import PLAN_RESPONSE_CODES, PlanResponse, SubplanEstimate

#: Two-byte frame magic ("Sketch Binary").
MAGIC = b"SB"

#: Binary framing version; moves in lockstep with the JSON
#: ``protocol_version`` (both serialize the same v1 envelopes).
WIRE_VERSION = 1

#: Largest accepted frame payload.  Matches the HTTP front door's body
#: bound: a batch of several thousand SQL strings fits, a runaway or
#: corrupt length prefix does not.
MAX_FRAME_BYTES = 16 * 1024 * 1024

#: Frame kinds.
KIND_ESTIMATE = 0x01        # client -> server: one request
KIND_BATCH = 0x02           # client -> server: a batch of requests
KIND_RESPONSE = 0x03        # server -> client: one response envelope
KIND_BATCH_RESPONSE = 0x04  # server -> client: a batch response envelope
KIND_ERROR = 0x05           # server -> client: transport-level failure
KIND_PLAN = 0x06            # client -> server: one plan advisory request
KIND_PLAN_RESPONSE = 0x07   # server -> client: a plan response envelope

_HEADER = struct.Struct("!2sBBI")
_F64 = struct.Struct("!d")
_I64 = struct.Struct("!q")
_U32 = struct.Struct("!I")

#: ``None`` sentinel for optional strings (an impossible real length —
#: it exceeds MAX_FRAME_BYTES).
_NONE_LEN = 0xFFFFFFFF

#: The closed response-code set as one byte (0 = no code).  Appending
#: new codes is additive; re-ordering is a wire break (bump
#: WIRE_VERSION).
_CODE_TO_BYTE = {code: i + 1 for i, code in enumerate(RESPONSE_CODES)}
_BYTE_TO_CODE = {i + 1: code for i, code in enumerate(RESPONSE_CODES)}

# response flag bits
_FLAG_KIND_QUERY = 0x01     # request_kind == "query" (else "sql")
_FLAG_CACHED = 0x02
_FLAG_HAS_ESTIMATE = 0x04
_FLAG_HAS_TOKEN = 0x08
_FLAG_HAS_SERVER_MS = 0x10

#: The plan code set (engine codes + ``"plan"``) as one byte; same
#: additive-append / no-reorder discipline as ``_CODE_TO_BYTE``.
_PLAN_CODE_TO_BYTE = {code: i + 1 for i, code in enumerate(PLAN_RESPONSE_CODES)}
_PLAN_BYTE_TO_CODE = {i + 1: code for i, code in enumerate(PLAN_RESPONSE_CODES)}

# plan-response flag bits
_PFLAG_KIND_QUERY = 0x01    # request_kind == "query" (else "sql")
_PFLAG_HAS_PLAN = 0x02
_PFLAG_HAS_COST = 0x04
_PFLAG_HAS_ESTIMATE_MS = 0x08
_PFLAG_HAS_ENUMERATE_MS = 0x10
_PFLAG_HAS_SERVER_MS = 0x20

# subplan flag bits
_SPFLAG_CACHED = 0x01
_SPFLAG_DEGRADED = 0x02

# plan-tree node tags
_NODE_LEAF = 0x00
_NODE_JOIN = 0x01

#: Join trees nest at most MAX_DP_RELATIONS deep in practice; a frame
#: claiming more is corrupt (and would otherwise recurse unboundedly).
_MAX_PLAN_DEPTH = 64


class TruncatedFrame(ProtocolError):
    """The peer closed the connection in the middle of a frame.

    A :class:`~repro.errors.ProtocolError` subclass so generic handlers
    keep working, but distinct so the client SDK can map mid-frame
    connection loss onto the :class:`~repro.errors.RemoteServerError`
    taxonomy instead of blaming the payload."""


# ----------------------------------------------------------------------
# primitive encoders
# ----------------------------------------------------------------------
def _pack_str(out: list, value: str | None) -> None:
    if value is None:
        out.append(_U32.pack(_NONE_LEN))
        return
    raw = value.encode("utf-8")
    out.append(_U32.pack(len(raw)))
    out.append(raw)


class _Reader:
    """Cursor over one frame payload; any overrun is a ProtocolError."""

    __slots__ = ("buf", "pos", "what")

    def __init__(self, payload: bytes, what: str):
        self.buf = payload
        self.pos = 0
        self.what = what

    def take(self, n: int) -> bytes:
        end = self.pos + n
        if end > len(self.buf):
            raise ProtocolError(
                f"{self.what} payload is truncated "
                f"(wanted {n} bytes at offset {self.pos}, "
                f"have {len(self.buf)})"
            )
        chunk = self.buf[self.pos:end]
        self.pos = end
        return chunk

    def u8(self) -> int:
        return self.take(1)[0]

    def u32(self) -> int:
        return _U32.unpack(self.take(4))[0]

    def f64(self) -> float:
        return _F64.unpack(self.take(8))[0]

    def i64(self) -> int:
        return _I64.unpack(self.take(8))[0]

    def string(self) -> str | None:
        length = self.u32()
        if length == _NONE_LEN:
            return None
        if length > MAX_FRAME_BYTES:
            raise ProtocolError(
                f"{self.what} carries an oversized string "
                f"({length} bytes)"
            )
        try:
            return self.take(length).decode("utf-8")
        except UnicodeDecodeError as exc:
            raise ProtocolError(
                f"{self.what} carries invalid UTF-8: {exc}"
            ) from exc

    def require_str(self, field: str) -> str:
        value = self.string()
        if value is None:
            raise ProtocolError(
                f"{self.what} is missing required field {field!r}"
            )
        return value

    def done(self) -> None:
        if self.pos != len(self.buf):
            raise ProtocolError(
                f"{self.what} has {len(self.buf) - self.pos} "
                "trailing payload byte(s)"
            )


def _sql_text(request: Query | str, memo: dict | None = None) -> str:
    if not isinstance(request, Query):
        return request
    if memo is None:
        return request.to_sql()
    # Batches repeat canonical queries (dedup'd streams, templated
    # workloads); render each distinct Query object once per envelope.
    key = id(request)
    sql = memo.get(key)
    if sql is None:
        sql = memo[key] = request.to_sql()
    return sql


def _parse_memo(sql: str, memo: dict):
    """``parse_sql`` once per distinct SQL string per envelope.

    Decoding a batch re-parses every response's request and canonical
    query; a templated 512-request stream holds only a handful of
    distinct strings, and parsing dominates unmarshalling without this.
    """
    query = memo.get(sql)
    if query is None:
        from ..db.sql import parse_sql

        query = memo[sql] = parse_sql(sql)
    return query


# ----------------------------------------------------------------------
# request envelopes
# ----------------------------------------------------------------------
def encode_estimate_request(
    request: Query | str, sketch: str | None = None
) -> bytes:
    out: list = []
    _pack_str(out, _sql_text(request))
    _pack_str(out, sketch)
    return b"".join(out)


def decode_estimate_request(payload: bytes) -> tuple[str, str | None]:
    r = _Reader(payload, "binary estimate request")
    sql = r.require_str("sql")
    sketch = r.string()
    r.done()
    return sql, sketch


def encode_batch_request(
    requests, sketch: str | None = None
) -> bytes:
    out: list = [_U32.pack(len(requests))]
    memo: dict = {}
    for request in requests:
        _pack_str(out, _sql_text(request, memo))
    _pack_str(out, sketch)
    return b"".join(out)


def decode_batch_request(payload: bytes) -> tuple[list[str], str | None]:
    r = _Reader(payload, "binary estimate_batch request")
    count = r.u32()
    if count > MAX_FRAME_BYTES // 4:
        raise ProtocolError(
            f"binary estimate_batch request claims {count} queries"
        )
    sqls = [r.require_str(f"queries[{i}]") for i in range(count)]
    sketch = r.string()
    r.done()
    return sqls, sketch


# ----------------------------------------------------------------------
# response envelopes
# ----------------------------------------------------------------------
def _encode_response_body(
    out: list,
    response: EstimateResponse,
    server_ms: float | None,
    memo: dict | None = None,
) -> None:
    flags = 0
    if isinstance(response.request, Query):
        flags |= _FLAG_KIND_QUERY
    if response.cached:
        flags |= _FLAG_CACHED
    if response.estimate is not None:
        flags |= _FLAG_HAS_ESTIMATE
    if response.token is not None:
        flags |= _FLAG_HAS_TOKEN
    if server_ms is not None:
        flags |= _FLAG_HAS_SERVER_MS
    out.append(bytes((flags, _CODE_TO_BYTE.get(response.code, 0))))
    _pack_str(out, _sql_text(response.request, memo))
    _pack_str(
        out,
        None if response.query is None else _sql_text(response.query, memo),
    )
    _pack_str(out, response.sketch)
    _pack_str(out, response.error)
    if response.estimate is not None:
        out.append(_F64.pack(float(response.estimate)))
    if response.token is not None:
        out.append(_I64.pack(int(response.token)))
    if server_ms is not None:
        out.append(_F64.pack(float(server_ms)))


def _decode_response_body(
    r: _Reader, parse_cache: dict
) -> tuple[EstimateResponse, float | None]:
    flags = r.u8()
    code_byte = r.u8()
    if code_byte and code_byte not in _BYTE_TO_CODE:
        raise ProtocolError(
            f"{r.what} has unknown error-code byte {code_byte}"
        )
    code = _BYTE_TO_CODE.get(code_byte)
    request_sql = r.require_str("request")
    query_sql = r.string()
    sketch = r.string()
    error = r.string()
    estimate = r.f64() if flags & _FLAG_HAS_ESTIMATE else None
    token = r.i64() if flags & _FLAG_HAS_TOKEN else None
    server_ms = r.f64() if flags & _FLAG_HAS_SERVER_MS else None
    if error is None and code is not None:
        raise ProtocolError(f"{r.what} carries code {code!r} without an error")
    try:
        query = (
            None if query_sql is None else _parse_memo(query_sql, parse_cache)
        )
        request: Query | str = (
            _parse_memo(request_sql, parse_cache)
            if flags & _FLAG_KIND_QUERY
            else request_sql
        )
    except Exception as exc:
        raise ProtocolError(f"{r.what} carries unparseable SQL: {exc}") from exc
    return (
        EstimateResponse(
            request=request,
            query=query,
            sketch=sketch,
            estimate=estimate,
            cached=bool(flags & _FLAG_CACHED),
            error=error,
            code=code,
            token=token,
        ),
        server_ms,
    )


def encode_response(
    response: EstimateResponse, server_ms: float | None = None
) -> bytes:
    out: list = []
    _encode_response_body(out, response, server_ms)
    return b"".join(out)


def decode_response(payload: bytes) -> tuple[EstimateResponse, float | None]:
    r = _Reader(payload, "binary estimate response")
    response, server_ms = _decode_response_body(r, {})
    r.done()
    return response, server_ms


def encode_batch_response(
    responses, server_ms: float | None = None
) -> bytes:
    out: list = [_U32.pack(len(responses))]
    memo: dict = {}
    for i, response in enumerate(responses):
        # server_ms is envelope metadata (one timing for the batch);
        # carry it on the first body only, like the JSON envelope's
        # single top-level field.
        _encode_response_body(
            out, response, server_ms if i == 0 else None, memo
        )
    return b"".join(out)


def decode_batch_response(
    payload: bytes,
) -> tuple[list[EstimateResponse], float | None]:
    r = _Reader(payload, "binary estimate_batch response")
    count = r.u32()
    if count > MAX_FRAME_BYTES // 4:
        raise ProtocolError(
            f"binary estimate_batch response claims {count} responses"
        )
    responses: list[EstimateResponse] = []
    server_ms = None
    parse_cache: dict = {}
    for i in range(count):
        response, ms = _decode_response_body(r, parse_cache)
        if i == 0:
            server_ms = ms
        responses.append(response)
    r.done()
    return responses, server_ms


# ----------------------------------------------------------------------
# plan advisory envelopes (KIND_PLAN / KIND_PLAN_RESPONSE)
# ----------------------------------------------------------------------
def encode_plan_request(
    request: Query | str, sketch: str | None = None
) -> bytes:
    out: list = []
    _pack_str(out, _sql_text(request))
    _pack_str(out, sketch)
    return b"".join(out)


def decode_plan_request(payload: bytes) -> tuple[str, str | None]:
    r = _Reader(payload, "binary plan request")
    sql = r.require_str("sql")
    sketch = r.string()
    r.done()
    return sql, sketch


def _encode_plan_node(out: list, node) -> None:
    """Preorder tree walk: a leaf tag + alias, or a join tag + both
    children."""
    from ..optimizer.plans import JoinNode

    if isinstance(node, JoinNode):
        out.append(bytes((_NODE_JOIN,)))
        _encode_plan_node(out, node.left)
        _encode_plan_node(out, node.right)
    else:
        out.append(bytes((_NODE_LEAF,)))
        _pack_str(out, node.alias)


def _decode_plan_node(r: _Reader, depth: int = 0):
    from ..optimizer.plans import JoinNode, LeafNode

    if depth > _MAX_PLAN_DEPTH:
        raise ProtocolError(
            f"{r.what} plan tree nests deeper than {_MAX_PLAN_DEPTH}"
        )
    tag = r.u8()
    if tag == _NODE_LEAF:
        return LeafNode(r.require_str("alias"))
    if tag == _NODE_JOIN:
        left = _decode_plan_node(r, depth + 1)
        right = _decode_plan_node(r, depth + 1)
        return JoinNode(left, right)
    raise ProtocolError(f"{r.what} has unknown plan-node tag 0x{tag:02x}")


def encode_plan_response(
    response: PlanResponse, server_ms: float | None = None
) -> bytes:
    out: list = []
    flags = 0
    if isinstance(response.request, Query):
        flags |= _PFLAG_KIND_QUERY
    if response.plan is not None:
        flags |= _PFLAG_HAS_PLAN
    if response.estimated_cost is not None:
        flags |= _PFLAG_HAS_COST
    if response.estimate_ms is not None:
        flags |= _PFLAG_HAS_ESTIMATE_MS
    if response.enumerate_ms is not None:
        flags |= _PFLAG_HAS_ENUMERATE_MS
    if server_ms is not None:
        flags |= _PFLAG_HAS_SERVER_MS
    out.append(bytes((flags, _PLAN_CODE_TO_BYTE.get(response.code, 0))))
    _pack_str(out, _sql_text(response.request))
    _pack_str(
        out, None if response.query is None else _sql_text(response.query)
    )
    _pack_str(out, response.sketch)
    _pack_str(out, response.error)
    if response.estimated_cost is not None:
        out.append(_F64.pack(float(response.estimated_cost)))
    if response.estimate_ms is not None:
        out.append(_F64.pack(float(response.estimate_ms)))
    if response.enumerate_ms is not None:
        out.append(_F64.pack(float(response.enumerate_ms)))
    if server_ms is not None:
        out.append(_F64.pack(float(server_ms)))
    if response.plan is not None:
        _encode_plan_node(out, response.plan)
    out.append(_U32.pack(len(response.subplans)))
    for sub in response.subplans:
        sub_flags = 0
        if sub.cached:
            sub_flags |= _SPFLAG_CACHED
        if sub.degraded:
            sub_flags |= _SPFLAG_DEGRADED
        out.append(bytes((sub_flags, _CODE_TO_BYTE.get(sub.code, 0))))
        out.append(_U32.pack(len(sub.aliases)))
        for alias in sub.aliases:
            _pack_str(out, alias)
        out.append(_F64.pack(float(sub.estimate)))
        _pack_str(out, sub.error)
    return b"".join(out)


def decode_plan_response(
    payload: bytes,
) -> tuple[PlanResponse, float | None]:
    r = _Reader(payload, "binary plan response")
    flags = r.u8()
    code_byte = r.u8()
    if code_byte and code_byte not in _PLAN_BYTE_TO_CODE:
        raise ProtocolError(f"{r.what} has unknown error-code byte {code_byte}")
    code = _PLAN_BYTE_TO_CODE.get(code_byte)
    request_sql = r.require_str("request")
    query_sql = r.string()
    sketch = r.string()
    error = r.string()
    if error is None and code is not None:
        raise ProtocolError(f"{r.what} carries code {code!r} without an error")
    if bool(flags & _PFLAG_HAS_PLAN) == (error is not None):
        raise ProtocolError(
            f"{r.what} must carry exactly one of a plan or an error"
        )
    cost = r.f64() if flags & _PFLAG_HAS_COST else None
    estimate_ms = r.f64() if flags & _PFLAG_HAS_ESTIMATE_MS else None
    enumerate_ms = r.f64() if flags & _PFLAG_HAS_ENUMERATE_MS else None
    server_ms = r.f64() if flags & _PFLAG_HAS_SERVER_MS else None
    plan = _decode_plan_node(r) if flags & _PFLAG_HAS_PLAN else None
    count = r.u32()
    if count > MAX_FRAME_BYTES // 4:
        raise ProtocolError(
            f"binary plan response claims {count} subplans"
        )
    subplans: list[SubplanEstimate] = []
    for _ in range(count):
        sub_flags = r.u8()
        sub_code_byte = r.u8()
        if sub_code_byte and sub_code_byte not in _BYTE_TO_CODE:
            raise ProtocolError(
                f"{r.what} subplan has unknown error-code byte {sub_code_byte}"
            )
        sub_code = _BYTE_TO_CODE.get(sub_code_byte)
        n_aliases = r.u32()
        if n_aliases > MAX_FRAME_BYTES // 4:
            raise ProtocolError(
                f"binary plan response subplan claims {n_aliases} aliases"
            )
        aliases = tuple(
            r.require_str(f"aliases[{i}]") for i in range(n_aliases)
        )
        estimate = r.f64()
        sub_error = r.string()
        degraded = bool(sub_flags & _SPFLAG_DEGRADED)
        if degraded != (sub_code is not None):
            raise ProtocolError(
                f"{r.what} subplan degradation and its code disagree"
            )
        subplans.append(
            SubplanEstimate(
                aliases=aliases,
                estimate=estimate,
                cached=bool(sub_flags & _SPFLAG_CACHED),
                degraded=degraded,
                code=sub_code,
                error=sub_error,
            )
        )
    r.done()
    parse_cache: dict = {}
    try:
        query = (
            None if query_sql is None else _parse_memo(query_sql, parse_cache)
        )
        request: Query | str = (
            _parse_memo(request_sql, parse_cache)
            if flags & _PFLAG_KIND_QUERY
            else request_sql
        )
    except Exception as exc:
        raise ProtocolError(f"{r.what} carries unparseable SQL: {exc}") from exc
    return (
        PlanResponse(
            request=request,
            query=query,
            sketch=sketch,
            plan=plan,
            estimated_cost=cost,
            subplans=tuple(subplans),
            error=error,
            code=code,
            estimate_ms=estimate_ms,
            enumerate_ms=enumerate_ms,
        ),
        server_ms,
    )


# ----------------------------------------------------------------------
# transport-level errors
# ----------------------------------------------------------------------
def encode_error(message: str, code: str = "protocol") -> bytes:
    out: list = []
    _pack_str(out, message)
    _pack_str(out, code)
    return b"".join(out)


def decode_error(payload: bytes) -> tuple[str, str]:
    r = _Reader(payload, "binary error frame")
    message = r.require_str("error")
    code = r.require_str("code")
    r.done()
    return message, code


# ----------------------------------------------------------------------
# frame I/O
# ----------------------------------------------------------------------
def write_frame(sock: socket.socket, kind: int, payload: bytes) -> None:
    """Send one frame (header + payload) atomically via ``sendall``."""
    sock.sendall(_HEADER.pack(MAGIC, WIRE_VERSION, kind, len(payload)) + payload)


def _recv_exact(sock: socket.socket, n: int, what: str) -> bytes:
    chunks: list[bytes] = []
    remaining = n
    while remaining:
        chunk = sock.recv(min(remaining, 1 << 20))
        if not chunk:
            raise TruncatedFrame(
                f"connection closed mid-frame ({what}: "
                f"{n - remaining}/{n} bytes received)"
            )
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def read_frame(sock: socket.socket) -> tuple[int, bytes] | None:
    """Read one frame; ``None`` on a clean EOF at a frame boundary.

    Raises :class:`TruncatedFrame` when the connection dies inside a
    frame, and plain :class:`~repro.errors.ProtocolError` for a wrong
    magic, a version-skewed header, or an oversized length prefix (the
    payload of an oversized frame is never read).
    """
    first = sock.recv(1)
    if not first:
        return None
    header = first + _recv_exact(sock, _HEADER.size - 1, "frame header")
    magic, version, kind, length = _HEADER.unpack(header)
    if magic != MAGIC:
        raise ProtocolError(
            f"not a binary wire frame (bad magic {magic!r})"
        )
    if version != WIRE_VERSION:
        raise ProtocolError(
            f"binary frame speaks wire version {version}; "
            f"this build speaks {WIRE_VERSION}"
        )
    if length > MAX_FRAME_BYTES:
        raise ProtocolError(
            f"binary frame length {length} exceeds the "
            f"{MAX_FRAME_BYTES}-byte limit"
        )
    payload = _recv_exact(sock, length, "frame payload") if length else b""
    return kind, payload


# ----------------------------------------------------------------------
# the server side
# ----------------------------------------------------------------------
class BinaryFrameServer:
    """The binary listener a front door runs next to its HTTP socket.

    Accepts persistent connections; each runs a read-frame ->
    serve -> write-frame loop on its own daemon thread, marshalling
    onto the same ``SketchService`` the HTTP handler uses — so binary
    and JSON clients batch, dedup, and cache-hit together in one
    engine, and request-level failures stay structured *values* in the
    response envelope.  Transport-level failures answer with one
    :data:`KIND_ERROR` frame and close the connection (mirroring the
    front door's 4xx-then-close discipline); a client that dies
    mid-frame just costs its connection.

    Construction binds the socket (``port=0`` picks an ephemeral port);
    :meth:`start` launches the acceptor.  :meth:`close` stops accepting
    and shuts every live connection — it does **not** close the shared
    service (the owning front door does).
    """

    def __init__(self, service, host: str = "127.0.0.1", port: int = 0):
        self.service = service
        self._listener = socket.create_server(
            (host, port), backlog=64, reuse_port=False
        )
        self._thread: threading.Thread | None = None
        self._conns: set[socket.socket] = set()
        self._lock = threading.Lock()
        self._closed = False
        #: Lifetime accepted-connection count (telemetry/tests).
        self.connections_accepted = 0

    @property
    def host(self) -> str:
        return self._listener.getsockname()[0]

    @property
    def port(self) -> int:
        return self._listener.getsockname()[1]

    def start(self) -> "BinaryFrameServer":
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._accept_loop,
                name="sketch-serve-binary",
                daemon=True,
            )
            self._thread.start()
        return self

    def _accept_loop(self) -> None:
        while not self._closed:
            try:
                conn, _addr = self._listener.accept()
            except OSError:
                return  # listener closed
            with self._lock:
                if self._closed:
                    conn.close()
                    return
                self._conns.add(conn)
                self.connections_accepted += 1
            threading.Thread(
                target=self._serve_connection,
                args=(conn,),
                name="sketch-serve-binary-conn",
                daemon=True,
            ).start()

    def _serve_connection(self, conn: socket.socket) -> None:
        try:
            conn.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
            while True:
                try:
                    frame = read_frame(conn)
                except TruncatedFrame:
                    return  # client died mid-frame; nothing to answer
                except ProtocolError as exc:
                    # Bad magic / version skew / oversized prefix: the
                    # stream position is unknowable, so answer once and
                    # close (the HTTP 400-then-close discipline).
                    self._answer_error(conn, str(exc), "protocol")
                    return
                if frame is None:
                    return  # clean disconnect between frames
                kind, payload = frame
                try:
                    if kind == KIND_ESTIMATE:
                        sql, sketch = decode_estimate_request(payload)
                        t0 = time.perf_counter()
                        response = self.service.submit(sql, sketch).result()
                        server_ms = (time.perf_counter() - t0) * 1000.0
                        write_frame(
                            conn,
                            KIND_RESPONSE,
                            encode_response(response, server_ms),
                        )
                    elif kind == KIND_BATCH:
                        sqls, sketch = decode_batch_request(payload)
                        t0 = time.perf_counter()
                        futures = self.service.submit_many(sqls, sketch)
                        responses = [f.result() for f in futures]
                        server_ms = (time.perf_counter() - t0) * 1000.0
                        write_frame(
                            conn,
                            KIND_BATCH_RESPONSE,
                            encode_batch_response(responses, server_ms),
                        )
                    elif kind == KIND_PLAN:
                        sql, sketch = decode_plan_request(payload)
                        t0 = time.perf_counter()
                        response = self.service.plan(sql, sketch)
                        server_ms = (time.perf_counter() - t0) * 1000.0
                        write_frame(
                            conn,
                            KIND_PLAN_RESPONSE,
                            encode_plan_response(response, server_ms),
                        )
                    else:
                        self._answer_error(
                            conn, f"unknown frame kind 0x{kind:02x}", "protocol"
                        )
                        return
                except ProtocolError as exc:
                    self._answer_error(conn, str(exc), "protocol")
                    return
                except Exception as exc:
                    # submit() raising (closed service) or a marshalling
                    # bug: answer something structured, then close.
                    self._answer_error(
                        conn, f"service unavailable: {exc}", "internal"
                    )
                    return
        except OSError:
            pass  # connection torn down under us
        finally:
            with self._lock:
                self._conns.discard(conn)
            try:
                conn.close()
            except OSError:
                pass

    @staticmethod
    def _answer_error(conn: socket.socket, message: str, code: str) -> None:
        try:
            write_frame(conn, KIND_ERROR, encode_error(message, code))
            # Closing with unread bytes in the receive buffer makes the
            # kernel send RST, which can destroy the error frame before
            # the peer reads it.  Signal end-of-answers, then drain
            # (briefly, boundedly) whatever garbage the peer already
            # sent so the close is a clean FIN.
            conn.shutdown(socket.SHUT_WR)
            conn.settimeout(0.5)
            drained = 0
            while drained < (1 << 20):
                chunk = conn.recv(1 << 16)
                if not chunk:
                    break
                drained += len(chunk)
        except OSError:
            pass

    def close(self) -> None:
        """Stop accepting and quiesce live connections (idempotent).

        Only the *read* side of each connection is shut down: idle
        clients see a clean EOF immediately, while a connection whose
        request is still in the engine keeps its write side open — the
        front door drains the engine after this returns, and the
        in-flight answer is still delivered (the same
        answer-everything-accepted close discipline the HTTP listener
        follows).  Connection threads tear their sockets down as they
        exit.
        """
        if self._closed:
            return
        self._closed = True
        try:
            self._listener.close()
        except OSError:
            pass
        with self._lock:
            conns = list(self._conns)
        for conn in conns:
            try:
                conn.shutdown(socket.SHUT_RD)
            except OSError:
                pass
        if self._thread is not None:
            self._thread.join(2.0)

    def __repr__(self) -> str:
        state = "closed" if self._closed else "open"
        return f"BinaryFrameServer(port={self.port}, {state})"


__all__ = [
    "BinaryFrameServer",
    "KIND_BATCH",
    "KIND_BATCH_RESPONSE",
    "KIND_ERROR",
    "KIND_ESTIMATE",
    "KIND_PLAN",
    "KIND_PLAN_RESPONSE",
    "KIND_RESPONSE",
    "MAGIC",
    "MAX_FRAME_BYTES",
    "TruncatedFrame",
    "WIRE_VERSION",
    "decode_batch_request",
    "decode_batch_response",
    "decode_error",
    "decode_estimate_request",
    "decode_plan_request",
    "decode_plan_response",
    "decode_response",
    "encode_batch_request",
    "encode_batch_response",
    "encode_error",
    "encode_estimate_request",
    "encode_plan_request",
    "encode_plan_response",
    "encode_response",
    "read_frame",
    "write_frame",
]

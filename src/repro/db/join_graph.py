"""Alias-level join-graph analysis for the executor.

A query's join graph has one node per table alias and one edge per pair
of joined aliases (several join conditions between the same pair are
collapsed into one composite edge).  The executor picks its algorithm by
the graph's shape:

* forest (acyclic)  -> factorized message-passing count (fast),
* cyclic            -> materializing hash join (general fallback).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING

import networkx as nx

from ..errors import QueryError

if TYPE_CHECKING:  # pragma: no cover - avoids a db <-> workload import cycle
    from ..workload.query import JoinEdge, Query


@dataclass
class PairJoin:
    """All join conditions between one pair of aliases, as a composite key."""

    alias_a: str
    alias_b: str
    columns_a: list[str] = field(default_factory=list)
    columns_b: list[str] = field(default_factory=list)

    def sides_for(self, alias: str) -> tuple[list[str], list[str]]:
        """(own columns, other columns) oriented from ``alias``."""
        if alias == self.alias_a:
            return self.columns_a, self.columns_b
        if alias == self.alias_b:
            return self.columns_b, self.columns_a
        raise QueryError(f"alias {alias!r} not part of pair join")

    def other(self, alias: str) -> str:
        if alias == self.alias_a:
            return self.alias_b
        if alias == self.alias_b:
            return self.alias_a
        raise QueryError(f"alias {alias!r} not part of pair join")


def pair_joins(query: Query) -> dict[frozenset[str], PairJoin]:
    """Group the query's join edges by alias pair into composite joins."""
    pairs: dict[frozenset[str], PairJoin] = {}
    for join in query.joins:
        key = join.aliases
        if key not in pairs:
            a, b = sorted(key)
            pairs[key] = PairJoin(alias_a=a, alias_b=b)
        pair = pairs[key]
        if join.left_alias == pair.alias_a:
            pair.columns_a.append(join.left_column)
            pair.columns_b.append(join.right_column)
        else:
            pair.columns_a.append(join.right_column)
            pair.columns_b.append(join.left_column)
    return pairs


def build_join_graph(query: Query) -> nx.Graph:
    """Simple alias graph with ``PairJoin`` payloads on the edges."""
    graph = nx.Graph()
    graph.add_nodes_from(query.aliases)
    for key, pair in pair_joins(query).items():
        a, b = sorted(key)
        graph.add_edge(a, b, pair=pair)
    return graph


def is_acyclic(graph: nx.Graph) -> bool:
    """True when the (simple) alias graph is a forest."""
    return nx.number_of_edges(graph) == nx.number_of_nodes(graph) - nx.number_connected_components(graph)


def connected_components(graph: nx.Graph) -> list[set[str]]:
    return [set(c) for c in nx.connected_components(graph)]


def validate_join_graph(query: Query, require_connected: bool = False) -> nx.Graph:
    """Build and sanity-check a query's join graph.

    With ``require_connected=True`` a disconnected graph (an implicit
    cross product) raises; the workload generators always produce
    connected queries, but the executor itself supports cross products.
    """
    graph = build_join_graph(query)
    if require_connected and nx.number_connected_components(graph) > 1:
        raise QueryError(
            f"query joins are disconnected (cross product): {query.aliases}"
        )
    return graph


def join_edge_aliases(joins: tuple[JoinEdge, ...]) -> set[str]:
    """All aliases mentioned by any join edge."""
    out: set[str] = set()
    for join in joins:
        out |= set(join.aliases)
    return out

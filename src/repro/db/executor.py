"""Exact COUNT(*) execution.

This module is the reproduction's stand-in for HyPer as the source of
**true cardinalities** (training labels and ground truth in the demo).
Two algorithms are implemented and cross-checked in the test suite:

* :func:`count_factorized` — for acyclic join graphs.  Rather than
  materializing join results (which explode for star joins over fact
  tables), it pushes *count messages* up a spanning tree of the join
  graph: each alias aggregates the product of its children's counts per
  join key, grouped by the key toward its parent.  This is the classic
  factorized / Yannakakis-style aggregation and is exact for COUNT(*)
  over acyclic equi-joins.

* :func:`count_hash_join` — a general materializing pipeline of binary
  hash joins (with residual-edge filters for cyclic graphs).  Exact for
  any join graph, but memory scales with intermediate result sizes, so
  it serves as the fallback and as the test oracle.

:func:`execute_count` picks automatically and handles cross products
(disconnected join graphs) by multiplying per-component counts.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

import numpy as np

from ..errors import QueryError
from .database import Database
from .join_graph import (
    PairJoin,
    build_join_graph,
    is_acyclic,
)
from .table import Table

if TYPE_CHECKING:  # pragma: no cover - avoids a db <-> workload import cycle
    from ..workload.query import Predicate, Query


# ----------------------------------------------------------------------
# predicate application
# ----------------------------------------------------------------------


def table_filter_mask(table: Table, predicates: list[Predicate]) -> np.ndarray:
    """Boolean mask of rows satisfying all ``predicates`` (conjunction)."""
    mask = np.ones(table.n_rows, dtype=bool)
    for pred in predicates:
        mask &= table.column(pred.column).evaluate(pred.op, pred.literal)
    return mask


def _filtered_rows(db: Database, query: Query, alias: str) -> tuple[Table, np.ndarray]:
    """(table, row indices passing the alias' local predicates)."""
    table = db.table(query.alias_table(alias))
    mask = table_filter_mask(table, query.predicates_for(alias))
    return table, np.flatnonzero(mask)


# ----------------------------------------------------------------------
# composite join keys
# ----------------------------------------------------------------------


def _key_arrays(
    table: Table, rows: np.ndarray, columns: list[str]
) -> tuple[np.ndarray, np.ndarray]:
    """(key matrix, validity) for ``rows`` over the join ``columns``.

    Rows with a NULL in any join column can never match and are flagged
    invalid.  Keys come back as an (n, k) int64/float64 matrix.
    """
    parts = []
    valid = np.ones(len(rows), dtype=bool)
    for name in columns:
        col = table.column(name)
        parts.append(col.values[rows].astype(np.float64, copy=False))
        valid &= col.valid[rows]
    return np.stack(parts, axis=1), valid


def _joint_codes(left: np.ndarray, right: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """Map two key matrices into one shared integer code space.

    ``np.unique`` over the concatenation assigns consistent codes to
    equal composite keys on both sides, enabling bincount-based joins.
    """
    stacked = np.concatenate([left, right], axis=0)
    _, inverse = np.unique(stacked, axis=0, return_inverse=True)
    inverse = inverse.ravel()
    return inverse[: len(left)], inverse[len(left) :]


# ----------------------------------------------------------------------
# factorized (acyclic) counting
# ----------------------------------------------------------------------


def count_factorized(db: Database, query: Query) -> int:
    """Exact COUNT(*) via count messages over a spanning forest.

    Requires the alias join graph to be acyclic; raises otherwise.
    Disconnected components multiply (cross product semantics).
    """
    graph = build_join_graph(query)
    if not is_acyclic(graph):
        raise QueryError("count_factorized requires an acyclic join graph")

    import networkx as nx

    total = 1
    for component in nx.connected_components(graph):
        root = sorted(component)[0]
        count = _component_count(db, query, graph, root)
        if count == 0:
            return 0
        total *= count
    return int(total)


#: Dense count vectors are used when integer join keys fall in
#: ``[0, _DENSE_KEY_LIMIT)`` — bincount beats sort-based np.unique by
#: an order of magnitude on the dense id domains of star schemas.
_DENSE_KEY_LIMIT = 8_000_000


def _int_keys(table: Table, rows: np.ndarray, columns: list[str]) -> tuple[np.ndarray, np.ndarray] | None:
    """Single-column int64 join keys, or ``None`` if the fast path
    does not apply (multi-column or non-integer keys)."""
    if len(columns) != 1:
        return None
    col = table.column(columns[0])
    if col.values.dtype.kind != "i":
        return None
    return col.values[rows], col.valid[rows]


class _Message:
    """A count message: key -> summed multiplicity.

    ``dense`` holds a vector indexed by the raw key value; ``sparse``
    holds (unique key matrix, counts) for the generic composite case.
    """

    __slots__ = ("dense", "keys", "counts")

    def __init__(self, dense: np.ndarray | None, keys: np.ndarray | None, counts: np.ndarray | None):
        self.dense = dense
        self.keys = keys
        self.counts = counts


def _build_message(
    table: Table, rows: np.ndarray, columns: list[str], multiplicity: np.ndarray
) -> _Message:
    """Aggregate ``multiplicity`` by the join key toward the parent."""
    fast = _int_keys(table, rows, columns)
    if fast is not None:
        values, valid = fast
        keep = valid & (multiplicity > 0)
        if keep.any():
            vals = values[keep]
            low, high = int(vals.min()), int(vals.max())
            if 0 <= low and high < _DENSE_KEY_LIMIT:
                dense = np.bincount(vals, weights=multiplicity[keep], minlength=high + 1)
                return _Message(dense, None, None)
        else:
            return _Message(np.zeros(1), None, None)
    keys, valid = _key_arrays(table, rows, columns)
    keep = valid & (multiplicity > 0)
    keys = keys[keep]
    weights = multiplicity[keep]
    if len(keys) == 0:
        return _Message(None, np.empty((0, len(columns))), np.empty(0))
    unique_keys, inverse = np.unique(keys, axis=0, return_inverse=True)
    counts = np.bincount(inverse.ravel(), weights=weights)
    return _Message(None, unique_keys, counts)


def _apply_message(
    table: Table, rows: np.ndarray, columns: list[str], message: _Message
) -> np.ndarray:
    """Per-row child counts for ``rows`` under the join ``columns``."""
    if message.dense is not None:
        fast = _int_keys(table, rows, columns)
        if fast is not None:
            values, valid = fast
            in_range = valid & (values >= 0) & (values < len(message.dense))
            safe = np.where(in_range, values, 0)
            return np.where(in_range, message.dense[safe], 0.0)
        # Dense message but non-fast parent keys: expand to sparse.
        keys = np.flatnonzero(message.dense)
        message = _Message(None, keys.astype(np.float64)[:, None], message.dense[keys])
    keys, valid = _key_arrays(table, rows, columns)
    if len(message.keys) == 0:
        return np.zeros(len(rows))
    own_codes, child_codes = _joint_codes(keys, message.keys)
    n_codes = int(max(own_codes.max(initial=-1), child_codes.max(initial=-1))) + 1
    per_code = np.bincount(child_codes, weights=message.counts, minlength=n_codes)
    return np.where(valid, per_code[own_codes], 0.0)


def _component_count(db: Database, query: Query, graph, root: str) -> int:
    """Sum of multiplicities at the root of one tree component."""
    # Iterative post-order over the spanning tree rooted at `root`.
    parent: dict[str, str | None] = {root: None}
    order: list[str] = []
    stack = [root]
    while stack:
        node = stack.pop()
        order.append(node)
        for neighbor in graph.neighbors(node):
            if neighbor not in parent:
                parent[neighbor] = node
                stack.append(neighbor)

    messages: dict[str, _Message] = {}

    for alias in reversed(order):
        table, rows = _filtered_rows(db, query, alias)
        multiplicity = np.ones(len(rows), dtype=np.float64)

        for neighbor in graph.neighbors(alias):
            if parent.get(neighbor) != alias:
                continue  # only pull messages from children
            pair: PairJoin = graph.edges[alias, neighbor]["pair"]
            own_cols, _ = pair.sides_for(alias)
            multiplicity *= _apply_message(
                table, rows, own_cols, messages.pop(neighbor)
            )

        if parent[alias] is None:
            return int(round(multiplicity.sum()))

        pair = graph.edges[alias, parent[alias]]["pair"]
        own_cols, _ = pair.sides_for(alias)
        messages[alias] = _build_message(table, rows, own_cols, multiplicity)

    raise AssertionError("unreachable: root handled inside the loop")


# ----------------------------------------------------------------------
# materializing hash join (general fallback and test oracle)
# ----------------------------------------------------------------------


def count_hash_join(db: Database, query: Query, max_intermediate: int = 50_000_000) -> int:
    """Exact COUNT(*) by materializing row-index tuples join by join.

    Handles arbitrary (including cyclic) join graphs: a spanning tree is
    joined pair by pair, then residual edges are applied as filters.
    ``max_intermediate`` guards against runaway intermediate results.
    """
    graph = build_join_graph(query)

    import networkx as nx

    total = 1
    for component in nx.connected_components(graph):
        count = _hash_join_component(db, query, graph, sorted(component), max_intermediate)
        if count == 0:
            return 0
        total *= count
    return int(total)


def _hash_join_component(
    db: Database, query: Query, graph, aliases: list[str], max_intermediate: int
) -> int:
    tables: dict[str, Table] = {}
    rows: dict[str, np.ndarray] = {}
    for alias in aliases:
        tables[alias], rows[alias] = _filtered_rows(db, query, alias)
        if len(rows[alias]) == 0:
            return 0

    # Current materialization: alias -> positions into rows[alias], all
    # arrays share one length (the number of intermediate tuples).
    start = aliases[0]
    current: dict[str, np.ndarray] = {start: np.arange(len(rows[start]))}
    joined = {start}
    remaining_edges = {
        frozenset((a, b)): data["pair"] for a, b, data in graph.edges(data=True)
    }

    while len(joined) < len(aliases):
        # Pick any edge connecting the joined region to a new alias.
        pick: tuple[frozenset, PairJoin] | None = None
        for key, pair in remaining_edges.items():
            a, b = tuple(key)
            if (a in joined) != (b in joined):
                pick = (key, pair)
                break
        if pick is None:
            raise QueryError("join graph component is not connected")
        key, pair = pick
        del remaining_edges[key]
        inner = pair.alias_a if pair.alias_a in joined else pair.alias_b
        outer = pair.other(inner)

        inner_cols, outer_cols = pair.sides_for(inner)
        inner_keys, inner_valid = _key_arrays(
            tables[inner], rows[inner][current[inner]], inner_cols
        )
        outer_keys, outer_valid = _key_arrays(tables[outer], rows[outer], outer_cols)

        inner_codes, outer_codes = _joint_codes(inner_keys, outer_keys)
        inner_codes = np.where(inner_valid, inner_codes, -1)
        outer_codes = np.where(outer_valid, outer_codes, -2)

        # Sort the outer side by code, then locate each inner tuple's
        # matching segment with binary search.
        order = np.argsort(outer_codes, kind="stable")
        sorted_codes = outer_codes[order]
        seg_start = np.searchsorted(sorted_codes, inner_codes, side="left")
        seg_end = np.searchsorted(sorted_codes, inner_codes, side="right")
        counts = seg_end - seg_start
        total = int(counts.sum())
        if total == 0:
            return 0
        if total > max_intermediate:
            raise QueryError(
                f"hash join intermediate of {total} tuples exceeds the "
                f"{max_intermediate} limit"
            )

        expand = np.repeat(np.arange(len(counts)), counts)
        within = np.arange(total) - np.repeat(np.cumsum(counts) - counts, counts)
        outer_positions = order[seg_start[expand] + within]

        current = {alias: positions[expand] for alias, positions in current.items()}
        current[outer] = outer_positions
        joined.add(outer)

    # Residual (cycle-closing) edges become filters over the tuples.
    n_tuples = len(next(iter(current.values())))
    keep = np.ones(n_tuples, dtype=bool)
    for pair in remaining_edges.values():
        a, b = pair.alias_a, pair.alias_b
        cols_a, cols_b = pair.sides_for(a)
        keys_a, valid_a = _key_arrays(tables[a], rows[a][current[a]], cols_a)
        keys_b, valid_b = _key_arrays(tables[b], rows[b][current[b]], cols_b)
        keep &= valid_a & valid_b & np.all(keys_a == keys_b, axis=1)
    return int(keep.sum())


# ----------------------------------------------------------------------
# entry point
# ----------------------------------------------------------------------


def execute_count(db: Database, query: Query, method: str = "auto") -> int:
    """Exact result size of ``SELECT COUNT(*)`` for ``query`` on ``db``.

    ``method`` is ``"auto"`` (factorized when acyclic, else hash join),
    ``"factorized"``, or ``"hash"``.
    """
    query.validate(db)
    if method == "factorized":
        return count_factorized(db, query)
    if method == "hash":
        return count_hash_join(db, query)
    if method != "auto":
        raise QueryError(f"unknown execution method {method!r}")
    graph = build_join_graph(query)
    if is_acyclic(graph):
        return count_factorized(db, query)
    return count_hash_join(db, query)

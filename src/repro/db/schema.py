"""Schema objects: column/table declarations and PK/FK relationships.

The demo's graphical query builder "automatically add[s] the
corresponding join predicates ... based on the single PK/FK relationships
that exist between tables"; the catalog here is what makes that possible
programmatically (see :meth:`Database.join_edge_between` in database.py).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..errors import SchemaError
from .types import DType


@dataclass(frozen=True)
class ColumnSchema:
    """Declaration of one column."""

    name: str
    dtype: DType
    nullable: bool = False

    def __post_init__(self):
        if not self.name.isidentifier():
            raise SchemaError(f"invalid column name {self.name!r}")


@dataclass(frozen=True)
class ForeignKey:
    """A single-column foreign key ``table.column -> ref_table.ref_column``."""

    table: str
    column: str
    ref_table: str
    ref_column: str

    def __str__(self) -> str:
        return f"{self.table}.{self.column} -> {self.ref_table}.{self.ref_column}"


@dataclass
class TableSchema:
    """Declaration of one table: ordered columns and an optional PK."""

    name: str
    columns: list[ColumnSchema] = field(default_factory=list)
    primary_key: str | None = None

    def __post_init__(self):
        if not self.name.isidentifier():
            raise SchemaError(f"invalid table name {self.name!r}")
        seen: set[str] = set()
        for col in self.columns:
            if col.name in seen:
                raise SchemaError(
                    f"table {self.name!r} declares column {col.name!r} twice"
                )
            seen.add(col.name)
        if self.primary_key is not None and self.primary_key not in seen:
            raise SchemaError(
                f"table {self.name!r}: primary key {self.primary_key!r} "
                "is not a declared column"
            )

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column(self, name: str) -> ColumnSchema:
        for col in self.columns:
            if col.name == name:
                return col
        raise SchemaError(f"table {self.name!r} has no column {name!r}")

    def has_column(self, name: str) -> bool:
        return any(c.name == name for c in self.columns)

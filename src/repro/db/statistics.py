"""Per-column statistics (the engine's ANALYZE).

These statistics feed the PostgreSQL-style baseline estimator: most
common values with their frequencies, an equi-depth histogram over the
remaining values, distinct counts, null fractions, and min/max bounds —
the same artifacts ``pg_stats`` exposes.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from ..errors import SchemaError
from .column import Column
from .table import Table
from .types import DType


@dataclass
class ColumnStatistics:
    """Summary of one column, over its *encoded* domain.

    String columns are summarized over their dictionary codes; equality
    predicates encode their literal before probing, so MCV lookups work
    uniformly for every type.
    """

    dtype: DType
    n_rows: int
    n_distinct: int
    null_frac: float
    min_value: float
    max_value: float
    #: Most common values and their relative frequencies (of all rows).
    mcv_values: np.ndarray = field(default_factory=lambda: np.empty(0))
    mcv_freqs: np.ndarray = field(default_factory=lambda: np.empty(0))
    #: Equi-depth histogram bounds over the non-MCV values (ascending).
    histogram_bounds: np.ndarray = field(default_factory=lambda: np.empty(0))
    #: Fraction of all rows not covered by NULLs or the MCV list.
    remaining_frac: float = 0.0
    #: Distinct values outside the MCV list.
    remaining_distinct: int = 0

    @property
    def mcv_total_freq(self) -> float:
        return float(self.mcv_freqs.sum()) if self.mcv_freqs.size else 0.0


def analyze_column(
    column: Column, mcv_size: int = 25, histogram_bins: int = 50
) -> ColumnStatistics:
    """Compute :class:`ColumnStatistics` for one column."""
    n_rows = len(column)
    present = column.non_null_values().astype(np.float64, copy=False)
    null_frac = column.null_fraction()
    if present.size == 0:
        return ColumnStatistics(
            dtype=column.dtype,
            n_rows=n_rows,
            n_distinct=0,
            null_frac=null_frac,
            min_value=0.0,
            max_value=0.0,
        )

    values, counts = np.unique(present, return_counts=True)
    n_distinct = int(values.size)

    # MCV list: the top-k most frequent values (only those occurring more
    # than once, as PostgreSQL does for large tables).
    k = min(mcv_size, n_distinct)
    top = np.argsort(counts, kind="stable")[::-1][:k]
    top = top[counts[top] > 1] if n_rows > n_distinct else top[:0]
    mcv_values = values[top]
    mcv_freqs = counts[top] / max(n_rows, 1)

    # Histogram over the values not in the MCV list, equi-depth.
    in_mcv = np.isin(present, mcv_values)
    rest = np.sort(present[~in_mcv])
    remaining_frac = rest.size / max(n_rows, 1)
    remaining_distinct = max(n_distinct - mcv_values.size, 0)
    if rest.size >= 2:
        bins = min(histogram_bins, rest.size - 1)
        quantiles = np.linspace(0.0, 1.0, bins + 1)
        bounds = np.quantile(rest, quantiles, method="inverted_cdf")
    else:
        bounds = rest.copy()

    return ColumnStatistics(
        dtype=column.dtype,
        n_rows=n_rows,
        n_distinct=n_distinct,
        null_frac=null_frac,
        min_value=float(values[0]),
        max_value=float(values[-1]),
        mcv_values=np.asarray(mcv_values, dtype=np.float64),
        mcv_freqs=np.asarray(mcv_freqs, dtype=np.float64),
        histogram_bounds=np.asarray(bounds, dtype=np.float64),
        remaining_frac=float(remaining_frac),
        remaining_distinct=int(remaining_distinct),
    )


@dataclass
class TableStatistics:
    """Statistics for every column of one table."""

    table_name: str
    n_rows: int
    columns: dict[str, ColumnStatistics]

    def column(self, name: str) -> ColumnStatistics:
        try:
            return self.columns[name]
        except KeyError:
            raise SchemaError(
                f"no statistics for column {self.table_name}.{name}"
            ) from None


def analyze_table(
    table: Table, mcv_size: int = 25, histogram_bins: int = 50
) -> TableStatistics:
    """ANALYZE: statistics for all columns of ``table``."""
    return TableStatistics(
        table_name=table.name,
        n_rows=table.n_rows,
        columns={
            name: analyze_column(col, mcv_size=mcv_size, histogram_bins=histogram_bins)
            for name, col in table.columns.items()
        },
    )


def analyze_database(db, mcv_size: int = 25, histogram_bins: int = 50) -> dict[str, TableStatistics]:
    """ANALYZE every table of a database."""
    return {
        name: analyze_table(table, mcv_size=mcv_size, histogram_bins=histogram_bins)
        for name, table in db.tables.items()
    }

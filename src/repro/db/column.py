"""Columnar storage with NULL masks and dictionary-encoded strings."""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

from ..errors import QueryError, SchemaError
from .types import DType, STRING_OPERATORS


class Column:
    """One column of a table: a typed value array plus a validity mask.

    * numeric columns store ``values`` as int64 / float64,
    * string columns store int32 ``codes`` into ``dictionary`` (a sorted,
      deduplicated list of the distinct strings), with ``-1`` unused —
      NULLs are tracked uniformly by ``valid`` for every type.
    """

    def __init__(
        self,
        name: str,
        dtype: DType,
        values: np.ndarray,
        valid: np.ndarray | None = None,
        dictionary: list[str] | None = None,
    ):
        self.name = name
        self.dtype = dtype
        self.values = values
        self.valid = (
            np.ones(len(values), dtype=bool) if valid is None else np.asarray(valid, bool)
        )
        if len(self.valid) != len(self.values):
            raise SchemaError(
                f"column {name!r}: validity mask length {len(self.valid)} "
                f"!= value length {len(self.values)}"
            )
        if dtype is DType.STRING:
            if dictionary is None:
                raise SchemaError(f"string column {name!r} requires a dictionary")
            self.dictionary: list[str] | None = list(dictionary)
            self._code_of = {s: i for i, s in enumerate(self.dictionary)}
        else:
            if dictionary is not None:
                raise SchemaError(f"numeric column {name!r} cannot have a dictionary")
            self.dictionary = None
            self._code_of = {}

    # ------------------------------------------------------------------
    # construction helpers
    # ------------------------------------------------------------------
    @classmethod
    def from_ints(
        cls, name: str, values: Iterable, valid: np.ndarray | None = None
    ) -> "Column":
        return cls(name, DType.INT64, np.asarray(values, dtype=np.int64), valid)

    @classmethod
    def from_floats(
        cls, name: str, values: Iterable, valid: np.ndarray | None = None
    ) -> "Column":
        return cls(name, DType.FLOAT64, np.asarray(values, dtype=np.float64), valid)

    @classmethod
    def from_strings(cls, name: str, values: Sequence[str | None]) -> "Column":
        """Dictionary-encode a sequence of python strings (None = NULL)."""
        valid = np.array([v is not None for v in values], dtype=bool)
        present = sorted({v for v in values if v is not None})
        code_of = {s: i for i, s in enumerate(present)}
        codes = np.array(
            [code_of[v] if v is not None else 0 for v in values], dtype=np.int64
        )
        return cls(name, DType.STRING, codes, valid, dictionary=present)

    # ------------------------------------------------------------------
    # basic protocol
    # ------------------------------------------------------------------
    def __len__(self) -> int:
        return len(self.values)

    def __repr__(self) -> str:
        return f"Column({self.name!r}, {self.dtype}, n={len(self)})"

    def take(self, indices: np.ndarray) -> "Column":
        """Row subset (used by sampling); shares the dictionary."""
        return Column(
            self.name,
            self.dtype,
            self.values[indices],
            self.valid[indices],
            dictionary=self.dictionary,
        )

    def decode(self, row: int):
        """Return the python value at ``row`` (None for NULL)."""
        if not self.valid[row]:
            return None
        if self.dtype is DType.STRING:
            return self.dictionary[int(self.values[row])]
        if self.dtype is DType.INT64:
            return int(self.values[row])
        return float(self.values[row])

    def non_null_values(self) -> np.ndarray:
        """Raw (encoded) values of the non-NULL rows."""
        return self.values[self.valid]

    # ------------------------------------------------------------------
    # literal handling
    # ------------------------------------------------------------------
    def encode_literal(self, literal) -> float | int | None:
        """Map a python literal to this column's encoded domain.

        For string columns returns the dictionary code, or ``None`` when
        the string does not occur in the column (an always-false equality).
        Numeric literals pass through with a type check.
        """
        if self.dtype is DType.STRING:
            if not isinstance(literal, str):
                raise QueryError(
                    f"column {self.name!r} is a string column; got literal {literal!r}"
                )
            return self._code_of.get(literal)
        if isinstance(literal, bool) or not isinstance(literal, (int, float, np.integer, np.floating)):
            raise QueryError(
                f"column {self.name!r} is numeric; got literal {literal!r}"
            )
        return literal

    # ------------------------------------------------------------------
    # predicate evaluation
    # ------------------------------------------------------------------
    def evaluate(self, op: str, literal) -> np.ndarray:
        """Vectorized predicate ``column <op> literal`` -> boolean mask.

        NULL rows never qualify, for any operator (SQL three-valued logic
        collapsed to WHERE semantics).
        """
        if op == "in":
            return self._evaluate_in(literal)
        if self.dtype is DType.STRING:
            if op not in STRING_OPERATORS:
                raise QueryError(
                    f"operator {op!r} is not supported on string column {self.name!r}"
                )
            code = self.encode_literal(literal)
            if code is None:
                # Literal absent from the column: '=' matches nothing,
                # '<>' matches every non-NULL row.
                return (
                    np.zeros(len(self), dtype=bool)
                    if op == "="
                    else self.valid.copy()
                )
            if op == "=":
                return self.valid & (self.values == code)
            return self.valid & (self.values != code)

        value = self.encode_literal(literal)
        if op == "=":
            mask = self.values == value
        elif op == "<":
            mask = self.values < value
        elif op == ">":
            mask = self.values > value
        elif op == "<=":
            mask = self.values <= value
        elif op == ">=":
            mask = self.values >= value
        elif op == "<>":
            mask = self.values != value
        else:
            raise QueryError(f"unknown operator {op!r}")
        return mask & self.valid

    def _evaluate_in(self, members) -> np.ndarray:
        """``column IN (members)``: membership over the encoded domain.

        Members absent from a string column's dictionary simply cannot
        match (they shrink the disjunction), mirroring the '=' handling
        of an absent literal.
        """
        if isinstance(members, (str, bytes)) or not isinstance(members, (tuple, list)):
            raise QueryError(
                f"'in' takes a tuple of scalar literals, got {members!r}"
            )
        encoded = [self.encode_literal(m) for m in members]
        present = [code for code in encoded if code is not None]
        if not present:
            return np.zeros(len(self), dtype=bool)
        return self.valid & np.isin(self.values, np.asarray(present))

    # ------------------------------------------------------------------
    # summary facts used by statistics / featurization
    # ------------------------------------------------------------------
    def min_max(self) -> tuple[float, float]:
        """(min, max) over non-NULL encoded values; (0, 1) if all NULL."""
        present = self.non_null_values()
        if present.size == 0:
            return (0.0, 1.0)
        return (float(present.min()), float(present.max()))

    def n_distinct(self) -> int:
        present = self.non_null_values()
        if present.size == 0:
            return 0
        return int(np.unique(present).size)

    def null_fraction(self) -> float:
        if len(self) == 0:
            return 0.0
        return float(1.0 - self.valid.mean())

"""In-memory columnar relational engine (the repo's HyPer substitute).

Provides exact ``SELECT COUNT(*)`` execution over equi-join + predicate
queries, a PK/FK catalog, per-column statistics, and a SQL subset
parser/printer.
"""

from .column import Column
from .database import Database
from .executor import (
    count_factorized,
    count_hash_join,
    execute_count,
    table_filter_mask,
)
from .schema import ColumnSchema, ForeignKey, TableSchema
from .sql import parse_sql, to_sql
from .statistics import (
    ColumnStatistics,
    TableStatistics,
    analyze_column,
    analyze_database,
    analyze_table,
)
from .table import Table
from .types import DType, OPERATORS, STRING_OPERATORS

__all__ = [
    "Column",
    "Table",
    "Database",
    "ColumnSchema",
    "TableSchema",
    "ForeignKey",
    "DType",
    "OPERATORS",
    "STRING_OPERATORS",
    "execute_count",
    "count_factorized",
    "count_hash_join",
    "table_filter_mask",
    "parse_sql",
    "to_sql",
    "analyze_column",
    "analyze_table",
    "analyze_database",
    "ColumnStatistics",
    "TableStatistics",
]

"""Database container: tables plus the PK/FK catalog."""

from __future__ import annotations

import networkx as nx

from ..errors import SchemaError
from .schema import ForeignKey
from .table import Table


class Database:
    """A set of tables and the foreign keys connecting them.

    The FK catalog powers two features of the demo: automatic join
    predicates when the user selects multiple tables, and join-graph
    validation for generated queries.
    """

    def __init__(self, name: str = "db"):
        self.name = name
        self.tables: dict[str, Table] = {}
        self.foreign_keys: list[ForeignKey] = []

    # ------------------------------------------------------------------
    # catalog maintenance
    # ------------------------------------------------------------------
    def add_table(self, table: Table) -> Table:
        if table.name in self.tables:
            raise SchemaError(f"table {table.name!r} already exists")
        self.tables[table.name] = table
        return table

    def add_foreign_key(self, fk: ForeignKey) -> ForeignKey:
        for side_table, side_column in (
            (fk.table, fk.column),
            (fk.ref_table, fk.ref_column),
        ):
            if side_table not in self.tables:
                raise SchemaError(f"foreign key references unknown table {side_table!r}")
            if not self.tables[side_table].schema.has_column(side_column):
                raise SchemaError(
                    f"foreign key references unknown column "
                    f"{side_table}.{side_column}"
                )
        self.foreign_keys.append(fk)
        return fk

    # ------------------------------------------------------------------
    # lookups
    # ------------------------------------------------------------------
    def table(self, name: str) -> Table:
        try:
            return self.tables[name]
        except KeyError:
            known = ", ".join(sorted(self.tables))
            raise SchemaError(f"unknown table {name!r}; known tables: {known}") from None

    def table_names(self) -> list[str]:
        return sorted(self.tables)

    def total_rows(self) -> int:
        return sum(t.n_rows for t in self.tables.values())

    # ------------------------------------------------------------------
    # join topology
    # ------------------------------------------------------------------
    def schema_graph(self) -> nx.MultiGraph:
        """Undirected multigraph of tables, one edge per foreign key."""
        graph = nx.MultiGraph()
        graph.add_nodes_from(self.tables)
        for fk in self.foreign_keys:
            graph.add_edge(fk.table, fk.ref_table, fk=fk)
        return graph

    def foreign_keys_between(self, table_a: str, table_b: str) -> list[ForeignKey]:
        """All FKs connecting two tables, in either direction."""
        return [
            fk
            for fk in self.foreign_keys
            if {fk.table, fk.ref_table} == {table_a, table_b}
        ]

    def join_edge_between(self, table_a: str, table_b: str) -> ForeignKey:
        """The single PK/FK relationship between two tables.

        The demo UI adds join predicates automatically and relies on
        there being exactly one relationship per table pair (the paper
        notes "the single PK/FK relationships that exist between tables").
        """
        edges = self.foreign_keys_between(table_a, table_b)
        if not edges:
            raise SchemaError(f"no foreign key connects {table_a!r} and {table_b!r}")
        if len(edges) > 1:
            raise SchemaError(
                f"ambiguous join between {table_a!r} and {table_b!r}: "
                f"{[str(e) for e in edges]}"
            )
        return edges[0]

    def __repr__(self) -> str:
        return (
            f"Database({self.name!r}, tables={len(self.tables)}, "
            f"fks={len(self.foreign_keys)})"
        )

"""Column data types for the in-memory engine.

The engine supports the three types the Deep Sketches demo workloads
need: 64-bit integers, 64-bit floats, and dictionary-encoded strings.
All columns are nullable; NULL semantics follow SQL (a predicate over
NULL is not true, so NULL rows never qualify).
"""

from __future__ import annotations

import enum

from ..errors import SchemaError
from ..ops import OPERATORS, STRING_OPERATORS  # re-exported  # noqa: F401


class DType(enum.Enum):
    """Supported column types."""

    INT64 = "int64"
    FLOAT64 = "float64"
    STRING = "string"

    @property
    def is_numeric(self) -> bool:
        return self in (DType.INT64, DType.FLOAT64)

    def __str__(self) -> str:  # keeps schema dumps readable
        return self.value


def dtype_from_name(name: str) -> DType:
    """Parse a type name (as stored in serialized schemas) to a DType."""
    for dtype in DType:
        if dtype.value == name:
            return dtype
    raise SchemaError(f"unknown column type {name!r}")

"""SQL subset printer and parser.

The sketch interface "consumes a SQL query and returns a cardinality
estimate" (paper Figure 1b), so the supported query class has a concrete
textual grammar:

    SELECT COUNT(*)
    FROM <table> <alias> [, <table> <alias>]...
    [WHERE <conjunct> [AND <conjunct>]...] [;]

    conjunct := alias.column = alias.column        -- equi-join
              | alias.column <op> literal           -- base-table predicate
              | alias.column IN (literal [, literal]...)
    op       := = | <> | <= | >= | < | >
    literal  := integer | float | 'string' (with '' escaping)

The parser is a hand-written tokenizer + recursive descent; keywords are
case-insensitive, and ``parse_sql(to_sql(q)) == q`` holds for every valid
query (property-tested).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from ..errors import ParseError
from ..workload.query import JoinEdge, Predicate, Query, TableRef

# ----------------------------------------------------------------------
# printing
# ----------------------------------------------------------------------


def format_literal(literal) -> str:
    """Render a python literal as a SQL literal."""
    if isinstance(literal, str):
        escaped = literal.replace("'", "''")
        return f"'{escaped}'"
    if isinstance(literal, float) and literal.is_integer():
        return f"{literal:.1f}"  # keep the float-ness visible (e.g. 5.0)
    return repr(literal)


def to_sql(query: Query) -> str:
    """Render a structured query as SQL text."""
    from_clause = ",".join(f"{t.table} {t.alias}" for t in query.tables)
    conjuncts = [
        f"{j.left_alias}.{j.left_column}={j.right_alias}.{j.right_column}"
        for j in query.joins
    ]
    for p in query.predicates:
        if p.op == "in":
            members = ",".join(format_literal(m) for m in p.literal)
            conjuncts.append(f"{p.alias}.{p.column} IN ({members})")
        else:
            conjuncts.append(
                f"{p.alias}.{p.column}{p.op}{format_literal(p.literal)}"
            )
    sql = f"SELECT COUNT(*) FROM {from_clause}"
    if conjuncts:
        sql += " WHERE " + " AND ".join(conjuncts)
    return sql + ";"


# ----------------------------------------------------------------------
# tokenizing
# ----------------------------------------------------------------------

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<string>'(?:[^']|'')*')
  | (?P<number>-?\d+\.\d*(?:[eE][+-]?\d+)?|-?\.\d+(?:[eE][+-]?\d+)?|-?\d+(?:[eE][+-]?\d+)?)
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<op><>|<=|>=|=|<|>)
  | (?P<punct>[(),.;*])
    """,
    re.VERBOSE,
)


@dataclass(frozen=True)
class _Token:
    kind: str
    text: str
    position: int


def _tokenize(sql: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(sql):
        match = _TOKEN_RE.match(sql, pos)
        if match is None:
            raise ParseError(f"unexpected character {sql[pos]!r}", position=pos)
        kind = match.lastgroup or ""
        if kind != "ws":
            tokens.append(_Token(kind, match.group(), pos))
        pos = match.end()
    return tokens


# ----------------------------------------------------------------------
# parsing
# ----------------------------------------------------------------------


class _Parser:
    """Recursive-descent parser over the token stream."""

    def __init__(self, sql: str):
        self.sql = sql
        self.tokens = _tokenize(sql)
        self.index = 0

    # -- token stream helpers ------------------------------------------
    def _peek(self) -> _Token | None:
        if self.index < len(self.tokens):
            return self.tokens[self.index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError("unexpected end of query", position=len(self.sql))
        self.index += 1
        return token

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        token = self._next()
        if token.kind != kind or (text is not None and token.text.upper() != text.upper()):
            expected = text or kind
            raise ParseError(
                f"expected {expected!r}, found {token.text!r}", position=token.position
            )
        return token

    def _expect_keyword(self, word: str) -> None:
        self._expect("name", word)

    def _accept_keyword(self, word: str) -> bool:
        token = self._peek()
        if token and token.kind == "name" and token.text.upper() == word.upper():
            self.index += 1
            return True
        return False

    def _accept_punct(self, char: str) -> bool:
        token = self._peek()
        if token and token.kind == "punct" and token.text == char:
            self.index += 1
            return True
        return False

    # -- grammar -------------------------------------------------------
    def parse(self) -> Query:
        self._expect_keyword("SELECT")
        self._expect_keyword("COUNT")
        self._expect("punct", "(")
        self._expect("punct", "*")
        self._expect("punct", ")")
        self._expect_keyword("FROM")
        tables = [self._table_ref()]
        while self._accept_punct(","):
            tables.append(self._table_ref())

        joins: list[JoinEdge] = []
        predicates: list[Predicate] = []
        if self._accept_keyword("WHERE"):
            self._conjunct(joins, predicates)
            while self._accept_keyword("AND"):
                self._conjunct(joins, predicates)

        self._accept_punct(";")
        trailing = self._peek()
        if trailing is not None:
            raise ParseError(
                f"unexpected trailing input {trailing.text!r}",
                position=trailing.position,
            )
        return Query(tables=tuple(tables), joins=tuple(joins), predicates=tuple(predicates))

    def _table_ref(self) -> TableRef:
        table = self._expect("name").text
        alias_token = self._peek()
        if alias_token is not None and alias_token.kind == "name" and alias_token.text.upper() not in ("WHERE", "AND"):
            alias = self._next().text
        else:
            alias = table
        return TableRef(table=table, alias=alias)

    def _column_ref(self) -> tuple[str, str]:
        alias = self._expect("name").text
        self._expect("punct", ".")
        column = self._expect("name").text
        return alias, column

    def _literal(self):
        token = self._next()
        if token.kind == "string":
            return token.text[1:-1].replace("''", "'")
        if token.kind == "number":
            text = token.text
            if any(c in text for c in ".eE"):
                return float(text)
            return int(text)
        raise ParseError(
            f"expected a literal, found {token.text!r}", position=token.position
        )

    def _conjunct(self, joins: list[JoinEdge], predicates: list[Predicate]) -> None:
        alias, column = self._column_ref()
        if self._accept_keyword("IN"):
            self._expect("punct", "(")
            members = [self._literal()]
            while self._accept_punct(","):
                members.append(self._literal())
            self._expect("punct", ")")
            predicates.append(
                Predicate(alias=alias, column=column, op="in", literal=tuple(members))
            )
            return
        op_token = self._next()
        if op_token.kind != "op":
            raise ParseError(
                f"expected a comparison operator, found {op_token.text!r}",
                position=op_token.position,
            )
        op = op_token.text
        value_token = self._peek()
        if value_token is None:
            raise ParseError("unexpected end of query", position=len(self.sql))
        if value_token.kind == "name":
            # alias.column on the right-hand side: an equi-join.
            if op != "=":
                raise ParseError(
                    f"only equi-joins are supported, found operator {op!r}",
                    position=op_token.position,
                )
            right_alias, right_column = self._column_ref()
            joins.append(JoinEdge(alias, column, right_alias, right_column))
            return
        literal = self._literal()
        predicates.append(Predicate(alias=alias, column=column, op=op, literal=literal))


def parse_sql(sql: str) -> Query:
    """Parse SQL text in the supported subset into a :class:`Query`."""
    if not isinstance(sql, str) or not sql.strip():
        raise ParseError("empty query string")
    return _Parser(sql).parse()

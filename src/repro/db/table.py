"""Tables: a schema plus columnar data."""

from __future__ import annotations

from typing import Mapping

import numpy as np

from ..errors import SchemaError
from ..rng import SeedLike, make_rng
from .column import Column
from .schema import TableSchema


class Table:
    """An immutable in-memory table.

    Data is held column-wise; every column must match the schema's
    declared name/order and share one row count.
    """

    def __init__(self, schema: TableSchema, columns: Mapping[str, Column]):
        self.schema = schema
        self.columns: dict[str, Column] = {}
        n_rows: int | None = None
        for decl in schema.columns:
            if decl.name not in columns:
                raise SchemaError(
                    f"table {schema.name!r}: missing data for column {decl.name!r}"
                )
            col = columns[decl.name]
            if col.dtype is not decl.dtype:
                raise SchemaError(
                    f"table {schema.name!r} column {decl.name!r}: "
                    f"declared {decl.dtype}, got {col.dtype}"
                )
            if n_rows is None:
                n_rows = len(col)
            elif len(col) != n_rows:
                raise SchemaError(
                    f"table {schema.name!r}: column {decl.name!r} has "
                    f"{len(col)} rows, expected {n_rows}"
                )
            if not decl.nullable and not col.valid.all():
                raise SchemaError(
                    f"table {schema.name!r}: non-nullable column {decl.name!r} "
                    "contains NULLs"
                )
            self.columns[decl.name] = col
        extras = set(columns) - set(self.columns)
        if extras:
            raise SchemaError(
                f"table {schema.name!r}: undeclared columns {sorted(extras)}"
            )
        self.n_rows = n_rows or 0
        self._check_primary_key()

    def _check_primary_key(self) -> None:
        pk = self.schema.primary_key
        if pk is None or self.n_rows == 0:
            return
        col = self.columns[pk]
        if not col.valid.all():
            raise SchemaError(f"primary key {self.name}.{pk} contains NULLs")
        if np.unique(col.values).size != self.n_rows:
            raise SchemaError(f"primary key {self.name}.{pk} contains duplicates")

    @property
    def name(self) -> str:
        return self.schema.name

    def __len__(self) -> int:
        return self.n_rows

    def __repr__(self) -> str:
        return f"Table({self.name!r}, rows={self.n_rows}, cols={len(self.columns)})"

    def column(self, name: str) -> Column:
        try:
            return self.columns[name]
        except KeyError:
            raise SchemaError(
                f"table {self.name!r} has no column {name!r}"
            ) from None

    def take(self, indices: np.ndarray) -> "Table":
        """Row subset as a new Table (used to materialize samples)."""
        return Table(
            self.schema, {name: col.take(indices) for name, col in self.columns.items()}
        )

    def sample(self, n: int, rng: SeedLike = None) -> "Table":
        """Uniform sample without replacement of ``min(n, n_rows)`` rows."""
        gen = make_rng(rng)
        size = min(int(n), self.n_rows)
        indices = gen.choice(self.n_rows, size=size, replace=False)
        return self.take(np.sort(indices))

    def row(self, index: int) -> dict:
        """Decode one row to a python dict (debugging / template drawing)."""
        return {name: col.decode(index) for name, col in self.columns.items()}

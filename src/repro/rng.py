"""Seeded random-number-generator plumbing.

Every stochastic component in the library (data generators, query
generators, samplers, weight initializers, trainers) accepts either an
integer seed or a ready :class:`numpy.random.Generator`.  This module
provides the single conversion point so seeding behaviour is uniform.
"""

from __future__ import annotations

import numpy as np

#: Type accepted anywhere randomness is configurable.
SeedLike = int | np.random.Generator | None

_DEFAULT_SEED = 0x5EED


def make_rng(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    ``None`` maps to a fixed library-wide default seed so that library
    behaviour is reproducible unless the caller explicitly asks for
    entropy by passing their own generator.
    """
    if isinstance(seed, np.random.Generator):
        return seed
    if seed is None:
        return np.random.default_rng(_DEFAULT_SEED)
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, n: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``n`` independent child generators.

    Used when one seeded component fans out into parallel sub-components
    (e.g. one generator per table) that must not share a stream.
    """
    return [np.random.default_rng(s) for s in rng.bit_generator.seed_seq.spawn(n)]

"""Synthetic datasets standing in for the demo's IMDb and TPC-H data."""

from .imdb import (
    ImdbConfig,
    JOB_LIGHT_ALIASES,
    JOB_LIGHT_PREDICATE_COLUMNS,
    KIND_NAMES,
    NAMED_KEYWORDS,
    generate_imdb,
)
from .registry import (
    clear_dataset_cache,
    dataset_names,
    load_dataset,
    register_dataset,
)
from .tpch import TPCH_ALIASES, TPCH_PREDICATE_COLUMNS, TpchConfig, generate_tpch
from .validation import (
    CorrelationReport,
    analyze_imdb_correlations,
    cramers_v,
    decorrelated_imdb,
)

__all__ = [
    "ImdbConfig",
    "generate_imdb",
    "JOB_LIGHT_ALIASES",
    "JOB_LIGHT_PREDICATE_COLUMNS",
    "KIND_NAMES",
    "NAMED_KEYWORDS",
    "TpchConfig",
    "generate_tpch",
    "TPCH_ALIASES",
    "TPCH_PREDICATE_COLUMNS",
    "load_dataset",
    "register_dataset",
    "dataset_names",
    "clear_dataset_cache",
    "CorrelationReport",
    "analyze_imdb_correlations",
    "cramers_v",
    "decorrelated_imdb",
]

"""Dataset diagnostics: verify that generated data is IMDb-like.

The whole reproduction rests on the synthetic data carrying the
correlations the paper attributes to the real IMDb ("a real-world
dataset that contains many correlations").  This module quantifies them
so tests, benchmarks, and users can audit a generated database instead
of trusting the generator:

* per-column skew (Zipf-ness) via the top-1% frequency share,
* cross-column dependence inside a table (Cramér's V on a contingency
  table, chi-squared based),
* cross-join dependence between a dimension attribute and a fact
  category (the keyword-era effect), via Spearman rank correlation of
  era vs. category-popularity-rank,
* fan-out coupling between fact tables (the shared latent popularity),
  via Spearman correlation of per-parent child counts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np
from scipy import stats

from ..errors import ReproError
from ..db.database import Database


@dataclass(frozen=True)
class CorrelationReport:
    """Headline dependence measures for one database."""

    kind_year_cramers_v: float
    keyword_era_spearman: float
    fanout_spearman: float
    top_keyword_share: float

    def is_correlated(self) -> bool:
        """True when every planted correlation is present and material."""
        return (
            self.kind_year_cramers_v > 0.15
            and abs(self.keyword_era_spearman) > 0.1
            and self.fanout_spearman > 0.2
            and self.top_keyword_share > 0.02
        )


def cramers_v(codes_a: np.ndarray, codes_b: np.ndarray) -> float:
    """Cramér's V between two categorical code arrays (0 = independent,
    1 = fully determined)."""
    if len(codes_a) != len(codes_b):
        raise ReproError("cramers_v needs equal-length arrays")
    if len(codes_a) == 0:
        return 0.0
    a_vals, a_inv = np.unique(codes_a, return_inverse=True)
    b_vals, b_inv = np.unique(codes_b, return_inverse=True)
    if len(a_vals) < 2 or len(b_vals) < 2:
        return 0.0
    table = np.zeros((len(a_vals), len(b_vals)))
    np.add.at(table, (a_inv, b_inv), 1.0)
    chi2 = stats.chi2_contingency(table, correction=False)[0]
    n = table.sum()
    k = min(len(a_vals), len(b_vals))
    return float(np.sqrt(chi2 / (n * (k - 1))))


def _per_parent_counts(db: Database, fact: str, n_parents: int) -> np.ndarray:
    values = db.table(fact).column("movie_id").values
    return np.bincount(values, minlength=n_parents + 1)[1:]


def _decade_codes(years: np.ndarray) -> np.ndarray:
    return (years // 10).astype(np.int64)


def analyze_imdb_correlations(db: Database) -> CorrelationReport:
    """Compute the dependence report for a (synthetic) IMDb database."""
    title = db.table("title")
    years_col = title.column("production_year")
    valid = years_col.valid
    years = years_col.values

    # kind_id vs decade (within-table dependence).
    kinds = title.column("kind_id").values
    v = cramers_v(_decade_codes(years[valid]), kinds[valid])

    # keyword choice vs era (cross-join dependence): rank-correlate each
    # movie_keyword row's production decade with its keyword's peak rank.
    mk = db.table("movie_keyword")
    mk_movie = mk.column("movie_id").values
    mk_kw = mk.column("keyword_id").values
    year_of = np.zeros(title.n_rows + 1, dtype=np.int64)
    year_of[title.column("id").values] = years
    valid_of = np.zeros(title.n_rows + 1, dtype=bool)
    valid_of[title.column("id").values] = valid
    keep = valid_of[mk_movie]
    rows_kw = mk_kw[keep]
    rows_year = year_of[mk_movie[keep]].astype(float)
    # Proxy for a keyword's era: the mean year of the movies carrying it,
    # computed leave-one-out so a row cannot correlate with its own
    # contribution (singleton keywords would otherwise bias the measure
    # upward even on independent data).
    n_kw = int(rows_kw.max()) + 1 if rows_kw.size else 1
    kw_counts = np.bincount(rows_kw, minlength=n_kw)
    kw_year_sum = np.bincount(rows_kw, weights=rows_year, minlength=n_kw)
    multi = kw_counts[rows_kw] > 1
    loo_mean = (kw_year_sum[rows_kw[multi]] - rows_year[multi]) / (
        kw_counts[rows_kw[multi]] - 1
    )
    if multi.sum() > 2:
        rho_kw = stats.spearmanr(rows_year[multi], loo_mean).statistic
    else:
        rho_kw = 0.0

    # Fan-out coupling between cast_info and movie_companies.
    ci_counts = _per_parent_counts(db, "cast_info", title.n_rows)
    mc_counts = _per_parent_counts(db, "movie_companies", title.n_rows)
    rho_fanout = stats.spearmanr(ci_counts, mc_counts).statistic

    # Keyword skew: share of the single most frequent keyword.
    top_share = float(kw_counts.max() / max(kw_counts.sum(), 1))

    return CorrelationReport(
        kind_year_cramers_v=float(v),
        keyword_era_spearman=float(rho_kw),
        fanout_spearman=float(rho_fanout),
        top_keyword_share=top_share,
    )


def decorrelated_imdb(db: Database, seed: int = 0) -> Database:
    """A shuffled copy of the IMDb database with correlations destroyed.

    All *marginal* distributions are preserved, so single-table
    statistics, sample selectivities, and fan-out histograms are
    unchanged — but the dependence structure is wiped out:

    * fact-table FKs into ``title`` are remapped through a fresh random
      *bijection* of the title-id domain per table: every movie keeps a
      fan-out drawn from the same distribution, but which movie has
      which fan-out becomes independent across tables and independent of
      the movie's attributes;
    * every other non-primary-key column (including dimension FKs like
      ``keyword_id``) is independently *row-permuted*: value frequencies
      are untouched, pairings with the other columns are destroyed.

    Used by the correlation ablation: on this database the independence
    assumptions of the traditional estimators approximately hold, so
    their Table 1 tail should collapse — evidence that the gap on the
    correlated database really is about correlations.
    """
    import copy

    from ..db.column import Column
    from ..db.table import Table

    rng = np.random.default_rng(seed)
    out = Database(db.name + "-decorrelated")

    title_ids = db.table("title").column("id").values
    id_domain = int(title_ids.max()) + 1
    title_fks = {
        (fk.table, fk.column) for fk in db.foreign_keys if fk.ref_table == "title"
    }

    for name, table in db.tables.items():
        columns = {}
        for col_name, col in table.columns.items():
            if col_name == table.schema.primary_key:
                columns[col_name] = col
            elif (name, col_name) in title_fks:
                remap = np.zeros(id_domain, dtype=np.int64)
                remap[title_ids] = rng.permutation(title_ids)
                columns[col_name] = Column(
                    col.name, col.dtype, remap[col.values], col.valid.copy()
                )
            else:
                perm = rng.permutation(len(col))
                columns[col_name] = Column(
                    col.name,
                    col.dtype,
                    col.values[perm],
                    col.valid[perm],
                    dictionary=col.dictionary,
                )
        out.add_table(Table(copy.deepcopy(table.schema), columns))
    for fk in db.foreign_keys:
        out.add_foreign_key(fk)
    return out

"""Sampling helpers for the synthetic data generators.

The real IMDb is "a real-world dataset that contains many correlations
and therefore proves to be very challenging for cardinality estimators"
(paper, Section 1).  Since the dump itself is unavailable offline, the
generators plant the same *kinds* of structure explicitly:

* heavy-tailed (Zipfian) category popularity,
* era-dependent category preferences (a category's popularity peaks
  around a characteristic year and decays away from it), and
* group-size distributions that depend on attributes of the parent row.

All helpers are vectorized and driven by an explicit generator.
"""

from __future__ import annotations

import numpy as np

from ..errors import ReproError


def zipf_weights(n_items: int, s: float = 1.1) -> np.ndarray:
    """Normalized Zipf weights ``w_i ∝ 1 / rank_i^s`` for ``n_items`` items."""
    if n_items <= 0:
        raise ReproError(f"n_items must be positive, got {n_items}")
    if s < 0:
        raise ReproError(f"Zipf exponent must be non-negative, got {s}")
    ranks = np.arange(1, n_items + 1, dtype=np.float64)
    weights = ranks**-s
    return weights / weights.sum()


def sample_zipf(
    rng: np.random.Generator, n_items: int, size: int, s: float = 1.1
) -> np.ndarray:
    """Draw ``size`` item indices (0-based) from a Zipf distribution."""
    return rng.choice(n_items, size=size, p=zipf_weights(n_items, s))


def era_biased_choice(
    rng: np.random.Generator,
    base_weights: np.ndarray,
    item_peaks: np.ndarray,
    row_years: np.ndarray,
    width: float = 15.0,
    era_size: int = 10,
) -> np.ndarray:
    """Choose an item per row with popularity biased toward the row's year.

    Item ``i`` has a global popularity ``base_weights[i]`` and a peak year
    ``item_peaks[i]``; a row whose year is ``y`` picks item ``i`` with
    probability proportional to

        base_weights[i] * exp(-((item_peaks[i] - y) / width)^2).

    For tractability rows are bucketed into eras of ``era_size`` years and
    one categorical distribution is built per era (the bias varies slowly,
    so this is an excellent approximation and fully vectorized).

    This is the mechanism that makes e.g. keyword choice *correlated with
    production year across a join* — the failure mode of independence-
    assuming estimators that the paper's Table 1 exposes.
    """
    base_weights = np.asarray(base_weights, dtype=np.float64)
    item_peaks = np.asarray(item_peaks, dtype=np.float64)
    row_years = np.asarray(row_years, dtype=np.float64)
    if base_weights.shape != item_peaks.shape:
        raise ReproError("base_weights and item_peaks must have equal length")
    if width <= 0 or era_size <= 0:
        raise ReproError("width and era_size must be positive")

    out = np.empty(len(row_years), dtype=np.int64)
    eras = np.floor(row_years / era_size).astype(np.int64)
    for era in np.unique(eras):
        rows = np.flatnonzero(eras == era)
        center = (era + 0.5) * era_size
        bias = np.exp(-(((item_peaks - center) / width) ** 2))
        weights = base_weights * bias
        total = weights.sum()
        if total <= 0:
            weights = base_weights / base_weights.sum()
        else:
            weights = weights / total
        out[rows] = rng.choice(len(weights), size=len(rows), p=weights)
    return out


def conditional_counts(
    rng: np.random.Generator,
    means: np.ndarray,
    max_count: int | None = None,
) -> np.ndarray:
    """Poisson group sizes with per-row means (e.g. keywords per movie).

    Used to make fan-out depend on parent attributes: recent movies get
    more keywords, feature films more cast entries, and so on.
    """
    means = np.asarray(means, dtype=np.float64)
    if np.any(means < 0):
        raise ReproError("Poisson means must be non-negative")
    counts = rng.poisson(means)
    if max_count is not None:
        counts = np.minimum(counts, max_count)
    return counts.astype(np.int64)


def repeat_parent_rows(counts: np.ndarray) -> np.ndarray:
    """Expand per-parent counts to a parent-index array for child rows.

    ``repeat_parent_rows([2, 0, 1]) == [0, 0, 2]``: the first parent gets
    two children, the second none, the third one.
    """
    counts = np.asarray(counts, dtype=np.int64)
    if np.any(counts < 0):
        raise ReproError("counts must be non-negative")
    return np.repeat(np.arange(len(counts)), counts)


def truncated_normal_years(
    rng: np.random.Generator,
    size: int,
    mean: float,
    std: float,
    low: int,
    high: int,
) -> np.ndarray:
    """Integer years from a clipped normal (recency-skewed release years)."""
    if low > high:
        raise ReproError(f"invalid year range [{low}, {high}]")
    years = rng.normal(mean, std, size=size)
    return np.clip(np.round(years), low, high).astype(np.int64)


def mixture_years(
    rng: np.random.Generator,
    size: int,
    components: list[tuple[float, float, float]],
    low: int,
    high: int,
) -> np.ndarray:
    """Integer years from a mixture of clipped normals.

    ``components`` is a list of ``(weight, mean, std)`` tuples; weights
    are normalized internally.  Models the real IMDb's multi-modal year
    distribution (silent-era bump, post-2000 explosion).
    """
    if not components:
        raise ReproError("mixture needs at least one component")
    weights = np.array([w for w, _, _ in components], dtype=np.float64)
    weights = weights / weights.sum()
    choice = rng.choice(len(components), size=size, p=weights)
    out = np.empty(size, dtype=np.int64)
    for idx, (_, mean, std) in enumerate(components):
        rows = np.flatnonzero(choice == idx)
        if rows.size:
            out[rows] = truncated_normal_years(rng, rows.size, mean, std, low, high)
    return out

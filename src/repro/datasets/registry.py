"""Named dataset registry.

The demo offers two datasets ("TPC-H and IMDb"); the registry lets the
sketch manager and examples refer to them by name, with memoized
construction so repeated lookups don't regenerate data.
"""

from __future__ import annotations

from typing import Callable

from ..errors import ReproError
from ..db.database import Database
from .imdb import ImdbConfig, generate_imdb
from .tpch import TpchConfig, generate_tpch

_BUILDERS: dict[str, Callable[..., Database]] = {}
_CACHE: dict[tuple, Database] = {}


def register_dataset(name: str, builder: Callable[..., Database]) -> None:
    """Register a dataset builder under ``name`` (overwrites silently)."""
    _BUILDERS[name] = builder


def dataset_names() -> list[str]:
    return sorted(_BUILDERS)


def load_dataset(name: str, scale: float = 1.0, seed: int | None = None) -> Database:
    """Build (or fetch from cache) the named dataset."""
    if name not in _BUILDERS:
        known = ", ".join(dataset_names())
        raise ReproError(f"unknown dataset {name!r}; known: {known}")
    key = (name, float(scale), seed)
    if key not in _CACHE:
        _CACHE[key] = _BUILDERS[name](scale=scale, seed=seed)
    return _CACHE[key]


def clear_dataset_cache() -> None:
    _CACHE.clear()


def _build_imdb(scale: float = 1.0, seed: int | None = None) -> Database:
    cfg = ImdbConfig(scale=scale, seed=7 if seed is None else seed)
    return generate_imdb(cfg)


def _build_tpch(scale: float = 1.0, seed: int | None = None) -> Database:
    cfg = TpchConfig(scale=scale, seed=11 if seed is None else seed)
    return generate_tpch(cfg)


register_dataset("imdb", _build_imdb)
register_dataset("tpch", _build_tpch)

"""Synthetic TPC-H subset generator.

The demo supports sketches over TPC-H as its second dataset.  This
generator produces the classic 7-table schema (``region``, ``nation``,
``supplier``, ``customer``, ``part``, ``orders``, ``lineitem``) at a
configurable scale, following the spec's shapes where they matter for
cardinality estimation:

* uniform keys with fixed fan-outs (customer -> orders 1:10,
  orders -> lineitem 1:~4),
* dates as integer "day numbers" over a 7-year window,
* planted correlations absent from vanilla TPC-H but present in the
  skewed variants the estimation literature uses: order priority
  correlates with total price, ship date trails order date by a small
  lag, and discount depends on quantity.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..rng import SeedLike, make_rng, spawn
from ..db.column import Column
from ..db.database import Database
from ..db.schema import ColumnSchema, ForeignKey, TableSchema
from ..db.table import Table
from ..db.types import DType
from .distributions import repeat_parent_rows, zipf_weights

REGION_NAMES = ("AFRICA", "AMERICA", "ASIA", "EUROPE", "MIDDLE EAST")

#: Integer day numbers spanning 1992-01-01 .. 1998-12-31 (spec window).
DATE_LOW, DATE_HIGH = 0, 2557


@dataclass(frozen=True)
class TpchConfig:
    """Row counts at scale 1.0 (a miniature of the spec's SF ratios)."""

    scale: float = 1.0
    n_customers: int = 3_000
    n_suppliers: int = 200
    n_parts: int = 4_000
    orders_per_customer: float = 10.0
    lines_per_order: float = 4.0
    seed: int = 11

    def scaled(self, base: int) -> int:
        return max(int(round(base * self.scale)), 1)


def _ints(name: str, values) -> Column:
    return Column.from_ints(name, np.asarray(values, dtype=np.int64))


def _floats(name: str, values) -> Column:
    return Column.from_floats(name, np.asarray(values, dtype=np.float64))


def generate_tpch(config: TpchConfig | None = None, seed: SeedLike = None) -> Database:
    """Generate the synthetic TPC-H database."""
    cfg = config or TpchConfig()
    rng = make_rng(cfg.seed if seed is None else seed)
    cust_rng, supp_rng, part_rng, order_rng, line_rng = spawn(rng, 5)

    db = Database("tpch")

    # region / nation -------------------------------------------------
    region = Table(
        TableSchema(
            "region",
            [ColumnSchema("r_regionkey", DType.INT64), ColumnSchema("r_name", DType.STRING)],
            primary_key="r_regionkey",
        ),
        {
            "r_regionkey": _ints("r_regionkey", np.arange(len(REGION_NAMES))),
            "r_name": Column.from_strings("r_name", list(REGION_NAMES)),
        },
    )
    db.add_table(region)

    n_nations = 25
    nation = Table(
        TableSchema(
            "nation",
            [
                ColumnSchema("n_nationkey", DType.INT64),
                ColumnSchema("n_name", DType.STRING),
                ColumnSchema("n_regionkey", DType.INT64),
            ],
            primary_key="n_nationkey",
        ),
        {
            "n_nationkey": _ints("n_nationkey", np.arange(n_nations)),
            "n_name": Column.from_strings("n_name", [f"NATION-{i:02d}" for i in range(n_nations)]),
            "n_regionkey": _ints("n_regionkey", np.arange(n_nations) % len(REGION_NAMES)),
        },
    )
    db.add_table(nation)

    # supplier ---------------------------------------------------------
    n_supp = cfg.scaled(cfg.n_suppliers)
    supplier = Table(
        TableSchema(
            "supplier",
            [
                ColumnSchema("s_suppkey", DType.INT64),
                ColumnSchema("s_nationkey", DType.INT64),
                ColumnSchema("s_acctbal", DType.FLOAT64),
            ],
            primary_key="s_suppkey",
        ),
        {
            "s_suppkey": _ints("s_suppkey", np.arange(1, n_supp + 1)),
            "s_nationkey": _ints("s_nationkey", supp_rng.integers(0, n_nations, n_supp)),
            "s_acctbal": _floats("s_acctbal", supp_rng.uniform(-999.99, 9999.99, n_supp)),
        },
    )
    db.add_table(supplier)

    # customer ----------------------------------------------------------
    n_cust = cfg.scaled(cfg.n_customers)
    # Market segments skewed; nation correlates with segment slightly.
    segments = ["AUTOMOBILE", "BUILDING", "FURNITURE", "MACHINERY", "HOUSEHOLD"]
    seg_ids = cust_rng.choice(5, size=n_cust, p=zipf_weights(5, 0.6))
    cust_nations = (seg_ids * 5 + cust_rng.integers(0, 5, n_cust)) % n_nations
    customer = Table(
        TableSchema(
            "customer",
            [
                ColumnSchema("c_custkey", DType.INT64),
                ColumnSchema("c_nationkey", DType.INT64),
                ColumnSchema("c_mktsegment", DType.STRING),
                ColumnSchema("c_acctbal", DType.FLOAT64),
            ],
            primary_key="c_custkey",
        ),
        {
            "c_custkey": _ints("c_custkey", np.arange(1, n_cust + 1)),
            "c_nationkey": _ints("c_nationkey", cust_nations),
            "c_mktsegment": Column.from_strings(
                "c_mktsegment", [segments[i] for i in seg_ids]
            ),
            "c_acctbal": _floats("c_acctbal", cust_rng.uniform(-999.99, 9999.99, n_cust)),
        },
    )
    db.add_table(customer)

    # part ---------------------------------------------------------------
    n_part = cfg.scaled(cfg.n_parts)
    sizes = part_rng.integers(1, 51, n_part)
    retail = 900.0 + sizes * 10.0 + part_rng.uniform(0, 100, n_part)
    part = Table(
        TableSchema(
            "part",
            [
                ColumnSchema("p_partkey", DType.INT64),
                ColumnSchema("p_size", DType.INT64),
                ColumnSchema("p_retailprice", DType.FLOAT64),
                ColumnSchema("p_brand", DType.STRING),
            ],
            primary_key="p_partkey",
        ),
        {
            "p_partkey": _ints("p_partkey", np.arange(1, n_part + 1)),
            "p_size": _ints("p_size", sizes),
            "p_retailprice": _floats("p_retailprice", retail),
            "p_brand": Column.from_strings(
                "p_brand", [f"Brand#{(i % 5) + 1}{(i % 5) + 1}" for i in part_rng.integers(0, 25, n_part)]
            ),
        },
    )
    db.add_table(part)

    # orders ---------------------------------------------------------------
    order_counts = order_rng.poisson(cfg.orders_per_customer, n_cust)
    o_parent = repeat_parent_rows(order_counts)
    n_orders = len(o_parent)
    o_dates = order_rng.integers(DATE_LOW, DATE_HIGH - 150, n_orders)
    n_lines = np.maximum(order_rng.poisson(cfg.lines_per_order, n_orders), 1)
    base_price = order_rng.uniform(900.0, 10_000.0, n_orders)
    o_total = base_price * n_lines
    # Priority correlates with total price: urgent orders are expensive.
    pri_cut = np.quantile(o_total, [0.55, 0.8])
    o_priority = np.where(o_total > pri_cut[1], 1, np.where(o_total > pri_cut[0], 2, 3))
    orders = Table(
        TableSchema(
            "orders",
            [
                ColumnSchema("o_orderkey", DType.INT64),
                ColumnSchema("o_custkey", DType.INT64),
                ColumnSchema("o_orderdate", DType.INT64),
                ColumnSchema("o_totalprice", DType.FLOAT64),
                ColumnSchema("o_orderpriority", DType.INT64),
            ],
            primary_key="o_orderkey",
        ),
        {
            "o_orderkey": _ints("o_orderkey", np.arange(1, n_orders + 1)),
            "o_custkey": _ints("o_custkey", o_parent + 1),
            "o_orderdate": _ints("o_orderdate", o_dates),
            "o_totalprice": _floats("o_totalprice", o_total),
            "o_orderpriority": _ints("o_orderpriority", o_priority),
        },
    )
    db.add_table(orders)

    # lineitem ----------------------------------------------------------
    l_parent = repeat_parent_rows(n_lines)
    n_li = len(l_parent)
    quantity = line_rng.integers(1, 51, n_li)
    # Discount correlates with quantity (bulk discounts).
    discount = np.round(
        np.clip(line_rng.normal(0.02 + quantity / 50.0 * 0.06, 0.01), 0.0, 0.1), 2
    )
    ship_lag = line_rng.integers(1, 122, n_li)
    lineitem = Table(
        TableSchema(
            "lineitem",
            [
                ColumnSchema("l_linekey", DType.INT64),
                ColumnSchema("l_orderkey", DType.INT64),
                ColumnSchema("l_partkey", DType.INT64),
                ColumnSchema("l_suppkey", DType.INT64),
                ColumnSchema("l_quantity", DType.INT64),
                ColumnSchema("l_discount", DType.FLOAT64),
                ColumnSchema("l_shipdate", DType.INT64),
            ],
            primary_key="l_linekey",
        ),
        {
            "l_linekey": _ints("l_linekey", np.arange(1, n_li + 1)),
            "l_orderkey": _ints("l_orderkey", l_parent + 1),
            "l_partkey": _ints(
                "l_partkey",
                line_rng.choice(n_part, size=n_li, p=zipf_weights(n_part, 0.7)) + 1,
            ),
            "l_suppkey": _ints("l_suppkey", line_rng.integers(1, n_supp + 1, n_li)),
            "l_quantity": _ints("l_quantity", quantity),
            "l_discount": _floats("l_discount", discount),
            "l_shipdate": _ints("l_shipdate", o_dates[l_parent] + ship_lag),
        },
    )
    db.add_table(lineitem)

    for table_name, column, ref_table, ref_column in (
        ("nation", "n_regionkey", "region", "r_regionkey"),
        ("supplier", "s_nationkey", "nation", "n_nationkey"),
        ("customer", "c_nationkey", "nation", "n_nationkey"),
        ("orders", "o_custkey", "customer", "c_custkey"),
        ("lineitem", "l_orderkey", "orders", "o_orderkey"),
        ("lineitem", "l_partkey", "part", "p_partkey"),
        ("lineitem", "l_suppkey", "supplier", "s_suppkey"),
    ):
        db.add_foreign_key(ForeignKey(table_name, column, ref_table, ref_column))
    return db


#: Aliases used by the TPC-H example workloads.
TPCH_ALIASES = {
    "customer": "c",
    "orders": "o",
    "lineitem": "l",
    "part": "p",
    "supplier": "s",
    "nation": "n",
    "region": "r",
}

#: Predicate columns for generated TPC-H workloads.
TPCH_PREDICATE_COLUMNS = {
    "customer": ("c_nationkey",),
    "orders": ("o_orderdate", "o_orderpriority"),
    "lineitem": ("l_quantity", "l_shipdate"),
    "part": ("p_size",),
    "supplier": ("s_nationkey",),
}

"""Synthetic IMDb-like dataset generator.

The demo runs on the real Internet Movie Database, which is not available
offline; this module generates a database with the same schema subset
(the six JOB-light tables plus their dimension tables) and the same
*statistical character*: heavy-tailed category popularity and strong
correlations within and across tables.  See DESIGN.md's substitution
table for the rationale.

Planted correlations (each one defeats an independence assumption):

* ``title.kind_id`` depends on ``production_year`` (episodes explode
  after ~1990, feature films dominate earlier decades);
* keyword choice in ``movie_keyword`` is biased toward keywords whose
  popularity peak is near the movie's production year — a cross-join
  correlation between ``t.production_year`` and ``mk.keyword_id``;
* each movie has a latent *popularity* factor, increasing with recency,
  that drives fan-outs in ``cast_info``, ``movie_companies``, and
  ``movie_info_idx`` simultaneously (cross-table fan-out correlation);
* ``movie_companies.company_type_id`` and the per-movie info-type mix
  drift with the era.

The generator is fully vectorized and deterministic given the config.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..errors import ReproError
from ..rng import SeedLike, make_rng, spawn
from ..db.column import Column
from ..db.database import Database
from ..db.schema import ColumnSchema, ForeignKey, TableSchema
from ..db.table import Table
from ..db.types import DType
from .distributions import (
    conditional_counts,
    era_biased_choice,
    mixture_years,
    repeat_parent_rows,
    zipf_weights,
)

#: The seven IMDb title kinds, in catalog order (ids are 1-based).
KIND_NAMES = (
    "movie",
    "tv series",
    "tv movie",
    "video movie",
    "tv mini series",
    "video game",
    "episode",
)

#: Named keywords guaranteed to exist (the paper's example query uses
#: ``artificial-intelligence``); each maps to a popularity peak year.
NAMED_KEYWORDS = {
    "artificial-intelligence": 2010,
    "based-on-novel": 1985,
    "character-name-in-title": 1965,
    "murder": 1995,
    "independent-film": 2003,
    "superhero": 2012,
}

#: Country codes for company_name, most common first.
COUNTRY_CODES = ("us", "gb", "de", "fr", "jp", "in", "ca", "it", "es", "au")

#: IMDb's company_type dimension (ids 1 and 2 carry all the volume).
COMPANY_TYPE_NAMES = (
    "production companies",
    "distributors",
    "special effects companies",
    "miscellaneous companies",
)

#: IMDb's role_type dimension (cast_info.role_id references it).
ROLE_NAMES = (
    "actor",
    "actress",
    "producer",
    "writer",
    "cinematographer",
    "composer",
    "costume designer",
    "director",
    "editor",
    "miscellaneous crew",
    "production designer",
    "guest",
)

YEAR_LOW = 1880
YEAR_HIGH = 2019


@dataclass(frozen=True)
class ImdbConfig:
    """Size and shape knobs for the synthetic IMDb.

    ``scale=1.0`` yields roughly 20k titles and ~200k total rows — small
    enough that exact COUNT(*) labels for tens of thousands of training
    queries stay cheap, large enough for meaningful estimation errors.
    """

    scale: float = 1.0
    n_titles: int = 20_000
    n_keywords: int = 2_000
    n_companies: int = 1_500
    n_persons: int = 30_000
    n_info_types: int = 113
    seed: int = 7

    def scaled(self, base: int) -> int:
        value = int(round(base * self.scale))
        if value <= 0:
            raise ReproError(f"scale {self.scale} collapses table size to zero")
        return value


def _int_column(name: str, values: np.ndarray, valid: np.ndarray | None = None) -> Column:
    return Column.from_ints(name, values, valid)


def _title_table(cfg: ImdbConfig, rng: np.random.Generator) -> tuple[Table, dict]:
    """Generate ``title`` plus latent per-movie context reused downstream."""
    n = cfg.scaled(cfg.n_titles)
    ids = np.arange(1, n + 1, dtype=np.int64)

    years = mixture_years(
        rng,
        n,
        components=[(0.10, 1935.0, 20.0), (0.25, 1975.0, 18.0), (0.65, 2005.0, 9.0)],
        low=YEAR_LOW,
        high=YEAR_HIGH,
    )
    year_valid = rng.random(n) > 0.03  # ~3% NULL production_year

    # Kind drifts with era: feature films dominate early decades,
    # episodes dominate the streaming era.
    kind_base = np.array([0.42, 0.09, 0.08, 0.07, 0.05, 0.05, 0.24])
    kind_peaks = np.array([1970.0, 1995.0, 1990.0, 2000.0, 1998.0, 2008.0, 2010.0])
    kind_ids = (
        era_biased_choice(rng, kind_base, kind_peaks, years, width=30.0) + 1
    ).astype(np.int64)

    episode_kind = len(KIND_NAMES)  # id 7
    is_episode = kind_ids == episode_kind
    season = np.ones(n, dtype=np.int64)
    episode = np.ones(n, dtype=np.int64)
    n_episodes = int(is_episode.sum())
    if n_episodes:
        season[is_episode] = rng.choice(
            30, size=n_episodes, p=zipf_weights(30, 1.3)
        ) + 1
        episode[is_episode] = rng.integers(1, 51, size=n_episodes)

    # Latent popularity: recency-skewed, heavy-tailed; this single factor
    # drives cast, company, and rating fan-outs (cross-table correlation).
    # The gamma shape < 1 concentrates mass near zero with a long tail,
    # so a filtered subset of titles can have a fan-out far from the
    # average — the independence-assumption killer.
    recency = np.clip((years - 1960.0) / (YEAR_HIGH - 1960.0), 0.0, 1.0)
    popularity = rng.gamma(shape=1.2, scale=0.8, size=n) * (0.15 + recency**1.5 * 1.6)

    schema = TableSchema(
        "title",
        [
            ColumnSchema("id", DType.INT64),
            ColumnSchema("kind_id", DType.INT64),
            ColumnSchema("production_year", DType.INT64, nullable=True),
            ColumnSchema("season_nr", DType.INT64, nullable=True),
            ColumnSchema("episode_nr", DType.INT64, nullable=True),
        ],
        primary_key="id",
    )
    table = Table(
        schema,
        {
            "id": _int_column("id", ids),
            "kind_id": _int_column("kind_id", kind_ids),
            "production_year": _int_column("production_year", years, year_valid),
            "season_nr": _int_column("season_nr", season, is_episode),
            "episode_nr": _int_column("episode_nr", episode, is_episode),
        },
    )
    context = {
        "ids": ids,
        "years": years,
        "year_valid": year_valid,
        "kind_ids": kind_ids,
        "recency": recency,
        "popularity": popularity,
    }
    return table, context


def _keyword_table(cfg: ImdbConfig, rng: np.random.Generator) -> tuple[Table, np.ndarray]:
    """Generate ``keyword`` and return each keyword's popularity peak year."""
    n = cfg.scaled(cfg.n_keywords)
    n = max(n, len(NAMED_KEYWORDS))
    names = [f"keyword-{i:05d}" for i in range(1, n + 1)]
    peaks = rng.uniform(1930.0, 2018.0, size=n)
    # Recent peaks are more likely (keyword vocabulary grows over time).
    recent = rng.random(n) < 0.5
    peaks[recent] = rng.uniform(1990.0, 2018.0, size=int(recent.sum()))
    for offset, (name, peak) in enumerate(NAMED_KEYWORDS.items()):
        names[offset] = name
        peaks[offset] = peak

    schema = TableSchema(
        "keyword",
        [ColumnSchema("id", DType.INT64), ColumnSchema("keyword", DType.STRING)],
        primary_key="id",
    )
    table = Table(
        schema,
        {
            "id": _int_column("id", np.arange(1, n + 1)),
            "keyword": Column.from_strings("keyword", names),
        },
    )
    return table, peaks


def _company_table(cfg: ImdbConfig, rng: np.random.Generator) -> tuple[Table, np.ndarray]:
    """Generate ``company_name``; returns per-company era peaks."""
    n = cfg.scaled(cfg.n_companies)
    codes = rng.choice(
        len(COUNTRY_CODES), size=n, p=zipf_weights(len(COUNTRY_CODES), 1.0)
    )
    names = [f"company-{i:05d}" for i in range(1, n + 1)]
    peaks = rng.uniform(1940.0, 2018.0, size=n)

    schema = TableSchema(
        "company_name",
        [
            ColumnSchema("id", DType.INT64),
            ColumnSchema("name", DType.STRING),
            ColumnSchema("country_code", DType.STRING),
        ],
        primary_key="id",
    )
    table = Table(
        schema,
        {
            "id": _int_column("id", np.arange(1, n + 1)),
            "name": Column.from_strings("name", names),
            "country_code": Column.from_strings(
                "country_code", [COUNTRY_CODES[c] for c in codes]
            ),
        },
    )
    return table, peaks


def _label_dimension(name: str, label_column: str, labels: list[str]) -> Table:
    schema = TableSchema(
        name,
        [ColumnSchema("id", DType.INT64), ColumnSchema(label_column, DType.STRING)],
        primary_key="id",
    )
    return Table(
        schema,
        {
            "id": _int_column("id", np.arange(1, len(labels) + 1)),
            label_column: Column.from_strings(label_column, labels),
        },
    )


def _fact_table(
    name: str,
    movie_ids: np.ndarray,
    extra: dict[str, np.ndarray],
) -> Table:
    """Assemble a fact table ``(id, movie_id, *extra)``."""
    n = len(movie_ids)
    columns = {
        "id": _int_column("id", np.arange(1, n + 1)),
        "movie_id": _int_column("movie_id", movie_ids),
    }
    decls = [ColumnSchema("id", DType.INT64), ColumnSchema("movie_id", DType.INT64)]
    for col_name, values in extra.items():
        columns[col_name] = _int_column(col_name, values)
        decls.append(ColumnSchema(col_name, DType.INT64))
    return Table(TableSchema(name, decls, primary_key="id"), columns)


def generate_imdb(config: ImdbConfig | None = None, seed: SeedLike = None) -> Database:
    """Generate the synthetic IMDb database.

    ``seed`` overrides ``config.seed`` when given.  The result contains
    the six JOB-light tables (``title``, ``movie_keyword``, ``movie_info``,
    ``movie_info_idx``, ``movie_companies``, ``cast_info``) and the
    dimension tables ``keyword``, ``company_name``, ``info_type``,
    ``kind_type``, wired up with the IMDb foreign keys.
    """
    cfg = config or ImdbConfig()
    rng = make_rng(cfg.seed if seed is None else seed)
    streams = spawn(rng, 8)
    (title_rng, keyword_rng, company_rng, mk_rng, mi_rng, mii_rng, mc_rng, ci_rng) = streams

    db = Database("imdb")

    title, ctx = _title_table(cfg, title_rng)
    keyword, keyword_peaks = _keyword_table(cfg, keyword_rng)
    company, company_peaks = _company_table(cfg, company_rng)
    info_type = _label_dimension(
        "info_type", "info", [f"info-type-{i:03d}" for i in range(1, cfg.n_info_types + 1)]
    )
    kind_type = _label_dimension("kind_type", "kind", list(KIND_NAMES))
    company_type = _label_dimension("company_type", "kind", list(COMPANY_TYPE_NAMES))
    role_type = _label_dimension("role_type", "role", list(ROLE_NAMES))
    for table in (title, keyword, company, info_type, kind_type, company_type, role_type):
        db.add_table(table)

    years = ctx["years"]
    ids = ctx["ids"]
    recency = ctx["recency"]
    popularity = ctx["popularity"]
    kind_ids = ctx["kind_ids"]
    is_feature = kind_ids == 1

    # ------------------------------------------------------------------
    # movie_keyword: keyword choice correlates with production year.
    # ------------------------------------------------------------------
    mk_means = 0.5 + 3.5 * recency
    mk_counts = conditional_counts(mk_rng, mk_means, max_count=25)
    mk_parent = repeat_parent_rows(mk_counts)
    n_kw = len(keyword)
    kw_base = zipf_weights(n_kw, 1.05)
    mk_keywords = (
        era_biased_choice(
            mk_rng, kw_base, keyword_peaks, years[mk_parent], width=8.0
        )
        + 1
    )
    db.add_table(
        _fact_table("movie_keyword", ids[mk_parent], {"keyword_id": mk_keywords})
    )

    # ------------------------------------------------------------------
    # movie_info: info-type mix drifts with era and kind.
    # ------------------------------------------------------------------
    mi_means = 1.5 + 3.5 * recency + 1.5 * is_feature
    mi_counts = conditional_counts(mi_rng, mi_means, max_count=30)
    mi_parent = repeat_parent_rows(mi_counts)
    it_base = zipf_weights(cfg.n_info_types, 0.9)
    it_peaks = np.linspace(1930.0, 2018.0, cfg.n_info_types)
    mi_types = (
        era_biased_choice(mi_rng, it_base, it_peaks, years[mi_parent], width=35.0) + 1
    )
    db.add_table(_fact_table("movie_info", ids[mi_parent], {"info_type_id": mi_types}))

    # ------------------------------------------------------------------
    # movie_info_idx: rating rows, driven by the latent popularity.
    # ------------------------------------------------------------------
    mii_means = 0.25 + 1.1 * popularity
    mii_counts = conditional_counts(mii_rng, mii_means, max_count=10)
    mii_parent = repeat_parent_rows(mii_counts)
    rating_types = np.arange(99, 99 + 15)  # the mii info-type band
    mii_types = rating_types[
        mii_rng.choice(len(rating_types), size=len(mii_parent), p=zipf_weights(15, 1.0))
    ]
    db.add_table(
        _fact_table("movie_info_idx", ids[mii_parent], {"info_type_id": mii_types})
    )

    # ------------------------------------------------------------------
    # movie_companies: company era-biased; type drifts toward
    # distribution deals in recent decades.
    # ------------------------------------------------------------------
    mc_means = 0.4 + 1.3 * popularity
    mc_counts = conditional_counts(mc_rng, mc_means, max_count=12)
    mc_parent = repeat_parent_rows(mc_counts)
    co_base = zipf_weights(len(company), 1.1)
    mc_companies = (
        era_biased_choice(
            mc_rng, co_base, company_peaks, years[mc_parent], width=10.0
        )
        + 1
    )
    p_distribution = 0.10 + 0.80 * np.clip(
        (years[mc_parent] - 1960.0) / 60.0, 0.0, 1.0
    )
    mc_types = np.where(mc_rng.random(len(mc_parent)) < p_distribution, 2, 1)
    db.add_table(
        _fact_table(
            "movie_companies",
            ids[mc_parent],
            {"company_id": mc_companies, "company_type_id": mc_types},
        )
    )

    # ------------------------------------------------------------------
    # cast_info: cast size driven by popularity and kind; role mix
    # depends on kind (features credit more actors).
    # ------------------------------------------------------------------
    ci_means = (1.0 + 5.0 * popularity) * np.where(is_feature, 1.5, 0.7)
    ci_counts = conditional_counts(ci_rng, ci_means, max_count=40)
    ci_parent = repeat_parent_rows(ci_counts)
    n_persons = cfg.scaled(cfg.n_persons)
    persons = ci_rng.choice(n_persons, size=len(ci_parent), p=zipf_weights(n_persons, 0.8)) + 1
    feature_roles = zipf_weights(12, 1.4)
    episode_roles = np.roll(zipf_weights(12, 1.2), 2)  # shifted mix for TV
    role_pick = ci_rng.random(len(ci_parent))
    feature_parent = is_feature[ci_parent]
    roles = np.empty(len(ci_parent), dtype=np.int64)
    for mask, weights in ((feature_parent, feature_roles), (~feature_parent, episode_roles)):
        rows = np.flatnonzero(mask)
        if rows.size:
            cdf = np.cumsum(weights)
            roles[rows] = np.searchsorted(cdf, role_pick[rows], side="right") + 1
    roles = np.clip(roles, 1, 12)
    db.add_table(
        _fact_table("cast_info", ids[ci_parent], {"person_id": persons, "role_id": roles})
    )

    # ------------------------------------------------------------------
    # foreign keys (the demo's automatic join predicates use these)
    # ------------------------------------------------------------------
    for table_name, column, ref_table, ref_column in (
        ("title", "kind_id", "kind_type", "id"),
        ("movie_keyword", "movie_id", "title", "id"),
        ("movie_keyword", "keyword_id", "keyword", "id"),
        ("movie_info", "movie_id", "title", "id"),
        ("movie_info_idx", "movie_id", "title", "id"),
        ("movie_companies", "movie_id", "title", "id"),
        ("movie_companies", "company_id", "company_name", "id"),
        ("movie_companies", "company_type_id", "company_type", "id"),
        ("cast_info", "movie_id", "title", "id"),
        ("cast_info", "role_id", "role_type", "id"),
    ):
        db.add_foreign_key(ForeignKey(table_name, column, ref_table, ref_column))
    return db


#: JOB-light's table set and conventional aliases.
JOB_LIGHT_ALIASES = {
    "title": "t",
    "movie_keyword": "mk",
    "movie_info": "mi",
    "movie_info_idx": "mi_idx",
    "movie_companies": "mc",
    "cast_info": "ci",
}

#: Columns JOB-light-style queries filter on, per table, with the
#: operator classes the workload uses on them.
JOB_LIGHT_PREDICATE_COLUMNS = {
    "title": ("production_year", "kind_id", "season_nr"),
    "movie_keyword": ("keyword_id",),
    "movie_info": ("info_type_id",),
    "movie_info_idx": ("info_type_id",),
    "movie_companies": ("company_id", "company_type_id"),
    "cast_info": ("role_id", "person_id"),
}

"""A small LRU cache with hit/miss accounting.

Used by the estimation fast path (:mod:`repro.core.sketch`) to memoize
results per canonical query, and surfaced by the serving engine
(:mod:`repro.serve`) in its statistics.  Keys must be hashable;
:class:`~repro.workload.query.Query` qualifies because it is a frozen
dataclass whose three sets are stored canonically sorted — two queries
that differ only in clause order are one cache entry.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Hashable, Iterator

from .errors import ReproError

_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """Cumulative counters for one cache instance."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """Least-recently-used mapping with a fixed capacity.

    ``get`` refreshes recency; ``put`` evicts the stalest entry once
    ``maxsize`` is exceeded.  A ``maxsize`` of zero disables storage
    entirely (every lookup is a miss), which keeps call sites free of
    "is caching on?" branches.
    """

    def __init__(self, maxsize: int = 4096):
        if maxsize < 0:
            raise ReproError(f"cache maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._data

    def __iter__(self) -> Iterator[Hashable]:
        return iter(self._data)

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Cached value for ``key`` (refreshing recency), else ``default``."""
        value = self._data.get(key, _MISSING)
        if value is _MISSING:
            self._misses += 1
            return default
        self._hits += 1
        self._data.move_to_end(key)
        return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Like :meth:`get` but touches neither recency nor counters."""
        value = self._data.get(key, _MISSING)
        return default if value is _MISSING else value

    def put(self, key: Hashable, value: Any) -> None:
        if self.maxsize == 0:
            return
        if key in self._data:
            self._data.move_to_end(key)
        self._data[key] = value
        while len(self._data) > self.maxsize:
            self._data.popitem(last=False)
            self._evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are cumulative and survive)."""
        self._data.clear()

    def stats(self) -> CacheStats:
        return CacheStats(
            hits=self._hits,
            misses=self._misses,
            evictions=self._evictions,
            size=len(self._data),
            maxsize=self.maxsize,
        )

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"LRUCache(size={s.size}/{s.maxsize}, hits={s.hits}, "
            f"misses={s.misses}, evictions={s.evictions})"
        )


__all__ = ["LRUCache", "CacheStats"]

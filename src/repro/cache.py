"""Bounded in-memory caches: plain LRU and LRU-with-TTL.

Two cache classes back the estimation and serving fast paths:

* :class:`LRUCache` — least-recently-used eviction with hit/miss
  accounting.  Used by :mod:`repro.core.sketch` to memoize estimates
  per canonical query and by
  :class:`~repro.sampling.bitmaps.PredicateMaskMemo` to bound the
  predicate-mask memo.
* :class:`TTLCache` — the same interface plus a per-entry time-to-live,
  used by the serving layer's shared template-keyed feature cache
  (:mod:`repro.serve.feature_cache`), where entries derived from a
  sketch's vocabulary must not outlive a dropped/rebuilt sketch by more
  than the configured TTL.

Keys must be hashable; :class:`~repro.workload.query.Query` qualifies
because it is a frozen dataclass whose three sets are stored canonically
sorted — two queries that differ only in clause order are one cache
entry.  Both classes synchronize internally (a per-instance re-entrant
lock around every mutation and read): the serving executors answer
micro-batches of the same sketch from multiple threads, so the
per-sketch result cache and predicate-mask memo must tolerate
concurrent ``get``/``put`` without corrupting the recency order.  The
lock is uncontended in single-threaded use and its cost is noise next
to even one cached-model forward.
"""

from __future__ import annotations

import threading
import time
from collections import OrderedDict
from dataclasses import dataclass
from typing import Any, Callable, Hashable, Iterator

from .errors import ReproError

_MISSING = object()


@dataclass(frozen=True)
class CacheStats:
    """Cumulative counters for one cache instance."""

    hits: int
    misses: int
    evictions: int
    size: int
    maxsize: int

    @property
    def hit_rate(self) -> float:
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class LRUCache:
    """Least-recently-used mapping with a fixed capacity.

    ``get`` refreshes recency; ``put`` evicts the stalest entry once
    ``maxsize`` is exceeded.  A ``maxsize`` of zero disables storage
    entirely (every lookup is a miss), which keeps call sites free of
    "is caching on?" branches.
    """

    def __init__(self, maxsize: int = 4096):
        if maxsize < 0:
            raise ReproError(f"cache maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._lock = threading.RLock()
        self._data: OrderedDict[Hashable, Any] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            return key in self._data

    def __iter__(self) -> Iterator[Hashable]:
        with self._lock:
            return iter(list(self._data))

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Cached value for ``key`` (refreshing recency), else ``default``."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._hits += 1
            self._data.move_to_end(key)
            return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Like :meth:`get` but touches neither recency nor counters."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            return default if value is _MISSING else value

    def put(self, key: Hashable, value: Any) -> None:
        if self.maxsize == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def clear(self) -> None:
        """Drop all entries (counters are cumulative and survive)."""
        with self._lock:
            self._data.clear()

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                maxsize=self.maxsize,
            )

    def __repr__(self) -> str:
        s = self.stats()
        return (
            f"LRUCache(size={s.size}/{s.maxsize}, hits={s.hits}, "
            f"misses={s.misses}, evictions={s.evictions})"
        )


class TTLCache:
    """LRU cache whose entries also expire after ``ttl_seconds``.

    The interface mirrors :class:`LRUCache` (``get``/``peek``/``put``/
    ``clear``/``stats``); an expired entry behaves exactly like a
    missing one (counted as a miss and dropped on access).
    ``ttl_seconds=None`` disables expiry, leaving pure LRU semantics.
    ``clock`` is injectable so tests can advance time deterministically;
    it defaults to :func:`time.monotonic`.

    Expired entries are reaped lazily — on the access that finds them
    and wholesale in :meth:`purge_expired` — so a cache that stops being
    queried holds at most ``maxsize`` stale entries, never grows.
    """

    def __init__(
        self,
        maxsize: int = 4096,
        ttl_seconds: float | None = None,
        clock: Callable[[], float] = time.monotonic,
    ):
        if maxsize < 0:
            raise ReproError(f"cache maxsize must be >= 0, got {maxsize}")
        if ttl_seconds is not None and ttl_seconds <= 0:
            raise ReproError(f"cache ttl_seconds must be positive, got {ttl_seconds}")
        self.maxsize = maxsize
        self.ttl_seconds = ttl_seconds
        self._clock = clock
        self._lock = threading.RLock()
        self._data: OrderedDict[Hashable, tuple[Any, float]] = OrderedDict()
        self._hits = 0
        self._misses = 0
        self._evictions = 0
        self._expirations = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def __contains__(self, key: Hashable) -> bool:
        with self._lock:
            entry = self._data.get(key)
            return entry is not None and not self._expired(entry[1])

    def _expired(self, deadline: float) -> bool:
        return deadline != float("inf") and self._clock() >= deadline

    def _deadline(self) -> float:
        if self.ttl_seconds is None:
            return float("inf")
        return self._clock() + self.ttl_seconds

    def get(self, key: Hashable, default: Any = None) -> Any:
        """Live cached value for ``key`` (refreshing recency), else ``default``."""
        with self._lock:
            entry = self._data.get(key)
            if entry is None:
                self._misses += 1
                return default
            value, deadline = entry
            if self._expired(deadline):
                del self._data[key]
                self._expirations += 1
                self._misses += 1
                return default
            self._hits += 1
            self._data.move_to_end(key)
            return value

    def peek(self, key: Hashable, default: Any = None) -> Any:
        """Like :meth:`get` but touches neither recency nor counters."""
        with self._lock:
            entry = self._data.get(key)
            if entry is None or self._expired(entry[1]):
                return default
            return entry[0]

    def put(self, key: Hashable, value: Any) -> None:
        if self.maxsize == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = (value, self._deadline())
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)
                self._evictions += 1

    def purge_expired(self) -> int:
        """Drop every expired entry now; returns how many were dropped."""
        with self._lock:
            expired = [
                k for k, (_, deadline) in self._data.items() if self._expired(deadline)
            ]
            for key in expired:
                del self._data[key]
            self._expirations += len(expired)
            return len(expired)

    def clear(self) -> None:
        """Drop all entries (counters are cumulative and survive)."""
        with self._lock:
            self._data.clear()

    @property
    def expirations(self) -> int:
        """Entries dropped because their TTL elapsed (cumulative)."""
        with self._lock:
            return self._expirations

    def stats(self) -> CacheStats:
        with self._lock:
            return CacheStats(
                hits=self._hits,
                misses=self._misses,
                evictions=self._evictions,
                size=len(self._data),
                maxsize=self.maxsize,
            )

    def __repr__(self) -> str:
        s = self.stats()
        ttl = "inf" if self.ttl_seconds is None else f"{self.ttl_seconds:g}s"
        return (
            f"TTLCache(size={s.size}/{s.maxsize}, ttl={ttl}, hits={s.hits}, "
            f"misses={s.misses}, evictions={s.evictions}, "
            f"expirations={self._expirations})"
        )


__all__ = ["LRUCache", "TTLCache", "CacheStats"]

"""The C_out cost model.

C_out (Cluet & Moerkotte) charges a plan the sum of the cardinalities of
all intermediate join results it materializes.  It is the standard
yardstick in the cardinality-estimation literature (used throughout the
Join Order Benchmark papers the demo builds on [11, 12]) because it
isolates the effect of *cardinality estimates* on plan choice from
physical operator details.

The same plan can be costed under different estimators; costing under
the truth oracle gives the plan's *true* cost, which is how plan quality
is scored.
"""

from __future__ import annotations

from ..core.estimator import CardinalityEstimator
from ..workload.query import Query
from .plans import PlanNode, sub_query


class CardinalityCache:
    """Memoizes an estimator's sub-query cardinalities for one query.

    The DP enumerator probes the same alias subsets many times; caching
    by subset keeps estimator calls to one per connected subset.
    """

    def __init__(self, estimator: CardinalityEstimator, query: Query):
        self.estimator = estimator
        self.query = query
        self._cache: dict[frozenset[str], float] = {}

    def cardinality(self, aliases: frozenset[str]) -> float:
        if aliases not in self._cache:
            self._cache[aliases] = max(
                float(self.estimator.estimate(sub_query(self.query, aliases))), 1.0
            )
        return self._cache[aliases]

    @property
    def probes(self) -> int:
        return len(self._cache)


def cout_cost(plan: PlanNode, cards: CardinalityCache) -> float:
    """C_out of ``plan`` under the cached estimator.

    Base-table scans are excluded (their size does not depend on the
    join order); every join node contributes its output cardinality,
    including the root.
    """
    return sum(cards.cardinality(node.aliases) for node in plan.join_nodes())


def true_cost(plan: PlanNode, query: Query, truth_cards: CardinalityCache) -> float:
    """C_out of ``plan`` under the truth oracle (plan-quality scoring)."""
    return cout_cost(plan, truth_cards)

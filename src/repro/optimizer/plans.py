"""Join-plan trees.

The paper positions Deep Sketch estimates as direct input to "existing,
sophisticated join enumeration algorithms and cost models" (Section 1).
This package provides exactly that consumer: binary join trees, a C_out
cost model, and a dynamic-programming enumerator, so plan quality under
different estimators can be measured.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator

from ..errors import QueryError
from ..workload.query import Query


class PlanNode:
    """Base class for join-tree nodes."""

    @property
    def aliases(self) -> frozenset[str]:
        raise NotImplementedError

    def join_nodes(self) -> Iterator["JoinNode"]:
        """All internal (join) nodes, bottom-up."""
        raise NotImplementedError

    def leaf_count(self) -> int:
        return len(self.aliases)


@dataclass(frozen=True)
class LeafNode(PlanNode):
    """A base-table scan (with its pushed-down predicates)."""

    alias: str

    @property
    def aliases(self) -> frozenset[str]:
        return frozenset((self.alias,))

    def join_nodes(self) -> Iterator["JoinNode"]:
        return iter(())

    def __str__(self) -> str:
        return self.alias


@dataclass(frozen=True)
class JoinNode(PlanNode):
    """A binary join of two sub-plans."""

    left: PlanNode
    right: PlanNode

    def __post_init__(self):
        overlap = self.left.aliases & self.right.aliases
        if overlap:
            raise QueryError(f"join children share aliases {sorted(overlap)}")

    @property
    def aliases(self) -> frozenset[str]:
        return self.left.aliases | self.right.aliases

    def join_nodes(self) -> Iterator["JoinNode"]:
        yield from self.left.join_nodes()
        yield from self.right.join_nodes()
        yield self

    def __str__(self) -> str:
        return f"({self.left} ⨝ {self.right})"


def sub_query(query: Query, aliases: frozenset[str]) -> Query:
    """The query restricted to ``aliases``.

    Keeps the tables in the subset, every join whose two sides are both
    inside, and every predicate on an inside alias — the intermediate
    result a plan node materializes.
    """
    missing = aliases - set(query.aliases)
    if missing:
        raise QueryError(f"unknown aliases {sorted(missing)} in plan")
    return Query(
        tables=tuple(t for t in query.tables if t.alias in aliases),
        joins=tuple(j for j in query.joins if j.aliases <= aliases),
        predicates=tuple(p for p in query.predicates if p.alias in aliases),
    )


def validate_plan(plan: PlanNode, query: Query) -> None:
    """Check that ``plan`` covers exactly the query's aliases."""
    if plan.aliases != frozenset(query.aliases):
        raise QueryError(
            f"plan covers {sorted(plan.aliases)} but the query has "
            f"{sorted(query.aliases)}"
        )

"""The estimator-driven plan optimizer and the plan-quality experiment.

"The estimates produced by Deep Sketches can directly be leveraged by
existing, sophisticated join enumeration algorithms and cost models."
(paper, Section 1.)  :class:`PlanOptimizer` is that consumer: it wires
any :class:`~repro.core.estimator.CardinalityEstimator` into the DP
enumerator under the C_out model.

Plan quality is scored with the standard JOB methodology: the chosen
plan is re-costed under *true* cardinalities and compared to the best
plan the truth oracle would pick.  A factor of 1.0 means the estimator's
errors did not change the plan; larger factors quantify the damage bad
estimates do to the optimizer.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines.truth import TruthEstimator
from ..core.estimator import CardinalityEstimator
from ..db.database import Database
from ..errors import QueryError
from ..workload.query import Query
from .cost import CardinalityCache, cout_cost
from .enumerate import dp_optimal_plan, greedy_plan
from .plans import PlanNode


@dataclass(frozen=True)
class PlannedQuery:
    """The optimizer's output for one query."""

    query: Query
    plan: PlanNode
    estimated_cost: float

    def __str__(self) -> str:
        return f"{self.plan}  (est. C_out {self.estimated_cost:.0f})"


class PlanOptimizer:
    """DP join optimizer parameterized by a cardinality estimator."""

    def __init__(
        self,
        db: Database,
        estimator: CardinalityEstimator,
        strategy: str = "dp",
    ):
        if strategy not in ("dp", "greedy"):
            raise QueryError(f"unknown enumeration strategy {strategy!r}")
        self.db = db
        self.estimator = estimator
        self.strategy = strategy
        self._truth = TruthEstimator(db)

    def optimize(self, query: Query) -> PlannedQuery:
        """Pick the cheapest plan under the configured estimator."""
        cards = CardinalityCache(self.estimator, query)
        if self.strategy == "dp":
            plan, cost = dp_optimal_plan(query, cards)
        else:
            plan, cost = greedy_plan(query, cards)
        return PlannedQuery(query=query, plan=plan, estimated_cost=cost)

    # ------------------------------------------------------------------
    # plan-quality scoring
    # ------------------------------------------------------------------
    def true_cost_of(self, planned: PlannedQuery) -> float:
        """C_out of the chosen plan under true cardinalities."""
        truth_cards = CardinalityCache(self._truth, planned.query)
        return cout_cost(planned.plan, truth_cards)

    def optimal_true_cost(self, query: Query) -> float:
        """True cost of the best plan the truth oracle would choose."""
        truth_cards = CardinalityCache(self._truth, query)
        _, cost = dp_optimal_plan(query, truth_cards)
        return cost

    def plan_quality_factor(self, query: Query) -> float:
        """true cost of chosen plan / true cost of optimal plan (>= 1).

        The headline metric of the plan-quality experiment: 1.0 means
        the estimator's errors were harmless for this query.
        """
        planned = self.optimize(query)
        chosen = self.true_cost_of(planned)
        optimal = self.optimal_true_cost(query)
        if optimal <= 0:
            return 1.0  # empty result: every plan is free
        return max(chosen / optimal, 1.0)

"""Join enumeration + cost model consuming cardinality estimates.

The paper's stated downstream use of Deep Sketches (Section 1): feed the
estimates to a join enumerator with a cost model and get better plans.
"""

from .cost import CardinalityCache, cout_cost, true_cost
from .enumerate import (
    MAX_DP_RELATIONS,
    connected_subsets,
    dp_optimal_plan,
    greedy_plan,
)
from .optimizer import PlanOptimizer, PlannedQuery
from .plans import JoinNode, LeafNode, PlanNode, sub_query, validate_plan

__all__ = [
    "PlanNode",
    "LeafNode",
    "JoinNode",
    "sub_query",
    "validate_plan",
    "CardinalityCache",
    "cout_cost",
    "true_cost",
    "connected_subsets",
    "dp_optimal_plan",
    "greedy_plan",
    "MAX_DP_RELATIONS",
    "PlanOptimizer",
    "PlannedQuery",
]

"""Join enumeration: exhaustive DP over connected subsets, plus a greedy
baseline.

``dp_optimal_plan`` implements the classic dynamic program (DPsub/DPsize
family): for every connected alias subset, the cheapest tree is the
cheapest combination of two disjoint connected sub-plans joined by at
least one edge.  For the ≤5-way joins of JOB-light this is exact and
fast; complexity is exponential in the number of relations, so a guard
rejects queries beyond a configurable width.

``greedy_plan`` repeatedly joins the pair of sub-plans with the smallest
estimated output — the textbook heuristic, included as a baseline for
the enumeration-strategy comparison.
"""

from __future__ import annotations

from itertools import combinations

from ..errors import QueryError
from ..db.join_graph import build_join_graph
from ..workload.query import Query
from .cost import CardinalityCache
from .plans import JoinNode, LeafNode, PlanNode

#: DP explores O(3^n) subset splits; 10 relations is already generous.
MAX_DP_RELATIONS = 10


def _neighbors(query: Query) -> dict[str, set[str]]:
    graph = build_join_graph(query)
    return {alias: set(graph.neighbors(alias)) for alias in query.aliases}


def _connected(aliases: frozenset[str], neighbors: dict[str, set[str]]) -> bool:
    """Is the induced subgraph on ``aliases`` connected?"""
    if not aliases:
        return False
    seen = set()
    stack = [next(iter(aliases))]
    while stack:
        node = stack.pop()
        if node in seen:
            continue
        seen.add(node)
        stack.extend(neighbors[node] & aliases - seen)
    return seen == aliases


def _has_edge_between(
    a: frozenset[str], b: frozenset[str], neighbors: dict[str, set[str]]
) -> bool:
    return any(neighbors[alias] & b for alias in a)


def connected_subsets(query: Query) -> list[frozenset[str]]:
    """Every connected alias subset of the query's join graph.

    Deterministic order: by size, then by the alias order of
    ``query.aliases`` (the same ``combinations`` sweep the DP uses) —
    singletons first, the full query last.  These are exactly the
    subsets ``dp_optimal_plan`` probes cardinalities for (plus the
    singletons, which the DP seeds at zero cost but a degraded-estimate
    fallback needs), so a caller batching estimates ahead of the DP
    enumerates with this function and injects the answers.

    Raises :class:`~repro.errors.QueryError` under the same guards as
    the DP: more than :data:`MAX_DP_RELATIONS` relations, or a
    disconnected join graph.
    """
    aliases = list(query.aliases)
    n = len(aliases)
    if n > MAX_DP_RELATIONS:
        raise QueryError(
            f"{n} relations exceed the DP enumeration limit of {MAX_DP_RELATIONS}"
        )
    neighbors = _neighbors(query)
    if n > 1 and not _connected(frozenset(aliases), neighbors):
        raise QueryError("DP enumeration requires a connected join graph")
    subsets: list[frozenset[str]] = []
    for size in range(1, n + 1):
        for combo in combinations(aliases, size):
            subset = frozenset(combo)
            if _connected(subset, neighbors):
                subsets.append(subset)
    return subsets


def dp_optimal_plan(
    query: Query, cards: CardinalityCache
) -> tuple[PlanNode, float]:
    """Exhaustive bushy-plan DP; returns (plan, estimated C_out).

    Requires a connected join graph (no cross products) and at most
    :data:`MAX_DP_RELATIONS` relations.
    """
    aliases = list(query.aliases)
    n = len(aliases)
    if n > MAX_DP_RELATIONS:
        raise QueryError(
            f"{n} relations exceed the DP enumeration limit of {MAX_DP_RELATIONS}"
        )
    neighbors = _neighbors(query)
    if n > 1 and not _connected(frozenset(aliases), neighbors):
        raise QueryError("DP enumeration requires a connected join graph")

    best: dict[frozenset[str], tuple[PlanNode, float]] = {
        frozenset((a,)): (LeafNode(a), 0.0) for a in aliases
    }

    for size in range(2, n + 1):
        for combo in combinations(aliases, size):
            subset = frozenset(combo)
            if not _connected(subset, neighbors):
                continue
            output_card = cards.cardinality(subset)
            best_pair: tuple[PlanNode, float] | None = None
            # Enumerate splits into two connected halves with a join edge.
            members = sorted(subset)
            anchor = members[0]
            rest = members[1:]
            for r in range(0, len(rest)):
                for part in combinations(rest, r):
                    left = frozenset((anchor, *part))
                    right = subset - left
                    if not right:
                        continue
                    if left not in best or right not in best:
                        continue
                    if not _has_edge_between(left, right, neighbors):
                        continue
                    cost = best[left][1] + best[right][1] + output_card
                    if best_pair is None or cost < best_pair[1]:
                        best_pair = (
                            JoinNode(best[left][0], best[right][0]),
                            cost,
                        )
            if best_pair is not None:
                best[subset] = best_pair

    full = frozenset(aliases)
    if full not in best:
        raise QueryError("no connected plan covers the whole query")
    return best[full]


def greedy_plan(query: Query, cards: CardinalityCache) -> tuple[PlanNode, float]:
    """Greedy enumeration: always join the pair with the smallest
    estimated output cardinality.  Returns (plan, estimated C_out)."""
    neighbors = _neighbors(query)
    forest: dict[frozenset[str], PlanNode] = {
        frozenset((a,)): LeafNode(a) for a in query.aliases
    }
    total_cost = 0.0
    while len(forest) > 1:
        candidates = []
        for a, b in combinations(forest, 2):
            if _has_edge_between(a, b, neighbors):
                candidates.append((cards.cardinality(a | b), a, b))
        if not candidates:
            raise QueryError("greedy enumeration requires a connected join graph")
        card, a, b = min(candidates, key=lambda item: item[0])
        forest[a | b] = JoinNode(forest.pop(a), forest.pop(b))
        total_cost += card
    return next(iter(forest.values())), total_cost

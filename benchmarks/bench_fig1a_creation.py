"""Figure 1a — the four-step sketch creation pipeline and training cost.

The paper's reference points:

* training 90k queries for 100 epochs took ~39 minutes on a GPU — too
  slow for interactivity, hence the three mitigations;
* "the training time decreases linearly with fewer epochs";
* "for a small number of tables, 10,000 queries will already be
  sufficient to achieve good results";
* "25 epochs are usually enough to achieve a reasonable mean q-error on
  a separate validation set".

This harness times each pipeline stage end to end, verifies the linear
epoch scaling, and sweeps the training-set size to reproduce the
"more queries stop helping" saturation at our scale.
"""

from __future__ import annotations

import numpy as np

from repro.core import SketchBuilder, SketchConfig
from repro.datasets import ImdbConfig, generate_imdb
from repro.workload import spec_for_imdb

from conftest import write_result

#: Reduced scale for the sweeps: each point builds a fresh sketch.
_SWEEP_DB_SCALE = 0.25
_SWEEP_TABLES = ("title", "movie_keyword", "movie_info")


def _sweep_db():
    return generate_imdb(ImdbConfig(scale=_SWEEP_DB_SCALE, seed=7))


def _build(db, n_queries, epochs, seed=0):
    builder = SketchBuilder(
        db,
        spec_for_imdb(tables=_SWEEP_TABLES),
        config=SketchConfig(
            n_training_queries=n_queries,
            epochs=epochs,
            sample_size=300,
            hidden_units=64,
            seed=seed,
        ),
    )
    return builder.build(f"sweep-{n_queries}-{epochs}")


def test_fig1a_pipeline_stages(benchmark):
    """One full creation run, reporting per-stage wall-clock shares."""
    db = _sweep_db()
    _, report = benchmark.pedantic(
        _build, args=(db, 3000, 10), rounds=1, iterations=1
    )
    lines = ["Figure 1a pipeline stages (3000 queries, 10 epochs):"]
    for stage, seconds in report.stage_seconds.items():
        lines.append(f"  {stage:<10} {seconds:8.2f} s")
        benchmark.extra_info[stage] = round(seconds, 3)
    lines.append(f"  dropped {report.n_zero_cardinality_dropped} empty-result queries")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("fig1a_stages", text)
    # Training dominates creation cost, as in the demo's motivation.
    assert report.stage_seconds["train"] > report.stage_seconds["execute"]


def test_fig1a_training_time_linear_in_epochs(benchmark):
    """Paper: "the training time decreases linearly with fewer epochs"."""
    db = _sweep_db()
    epoch_grid = [4, 8, 16]

    def sweep():
        times = []
        for epochs in epoch_grid:
            _, report = _build(db, 1500, epochs)
            times.append(report.stage_seconds["train"])
        return times

    times = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Training time vs epochs (1500 queries):"]
    for epochs, seconds in zip(epoch_grid, times):
        lines.append(f"  {epochs:>3} epochs  {seconds:8.2f} s")
        benchmark.extra_info[f"epochs_{epochs}"] = round(seconds, 3)
    per_epoch = [t / e for t, e in zip(times, epoch_grid)]
    spread = max(per_epoch) / min(per_epoch)
    lines.append(f"  per-epoch cost spread: {spread:.2f}x (1.0 = perfectly linear)")
    text = "\n".join(lines)
    print("\n" + text)
    write_result("fig1a_epoch_scaling", text)
    # Linear scaling: per-epoch cost roughly constant across the grid.
    assert spread < 1.6, f"training time not linear in epochs: {per_epoch}"
    assert times[-1] > times[0]


def test_fig1a_query_budget_saturation(benchmark):
    """Paper: ~10k queries suffice for a small table subset; at our
    reduced scale the validation q-error must stop improving well before
    the largest budget."""
    db = _sweep_db()
    budgets = [500, 2000, 6000]

    def sweep():
        scores = []
        for budget in budgets:
            _, report = _build(db, budget, 12)
            scores.append(report.training.final_val_mean_qerror)
        return scores

    scores = benchmark.pedantic(sweep, rounds=1, iterations=1)
    lines = ["Validation mean q-error vs training-query budget (12 epochs):"]
    for budget, score in zip(budgets, scores):
        lines.append(f"  {budget:>6} queries  mean q-error {score:8.2f}")
        benchmark.extra_info[f"queries_{budget}"] = round(score, 3)
    text = "\n".join(lines)
    print("\n" + text)
    write_result("fig1a_query_budget", text)
    # More data must help going from starved to adequate...
    assert scores[1] < scores[0] * 1.05
    # ...and the improvement saturates: the last tripling of the budget
    # buys far less than the first one (diminishing returns).
    gain_first = scores[0] - scores[1]
    gain_second = scores[1] - scores[2]
    assert gain_second < max(gain_first, 0.5)


def test_fig1a_convergence_by_25_epochs(benchmark):
    """Paper: "25 epochs are usually enough to achieve a reasonable mean
    q-error on a separate validation set"."""
    db = _sweep_db()

    def build_long():
        return _build(db, 3000, 30)

    _, report = benchmark.pedantic(build_long, rounds=1, iterations=1)
    curve = report.training.val_curve()
    best = curve.min()
    at_25 = curve[24]
    lines = [
        "Validation mean q-error convergence (3000 queries, 30 epochs):",
        f"  epoch  5: {curve[4]:8.2f}",
        f"  epoch 15: {curve[14]:8.2f}",
        f"  epoch 25: {at_25:8.2f}",
        f"  best    : {best:8.2f}",
    ]
    text = "\n".join(lines)
    print("\n" + text)
    write_result("fig1a_convergence", text)
    benchmark.extra_info["val_qerror_at_25"] = round(float(at_25), 3)
    # By epoch 25 the model is within 25% of its best validation error.
    assert at_25 <= best * 1.25

"""Correlation ablation — is the Table 1 gap really about correlations?

The paper attributes the baselines' failures to IMDb being "a real-world
dataset that contains many correlations" and states the goal of showing
that "a learned cardinality model can compete with and even outperform
traditional cardinality estimators, **especially for highly correlated
data**".

This harness tests that attribution directly: it runs the same
JOB-light-style comparison on (a) the correlated synthetic IMDb (the
Table 1 fixtures) and (b) a *decorrelated* copy with identical marginal
distributions (``repro.datasets.decorrelated_imdb``).  If the paper's
story is right, the traditional estimators' tail errors must collapse
on (b) while remaining large on (a).
"""

from __future__ import annotations

import numpy as np

from repro.baselines import HyperEstimator, PostgresEstimator
from repro.core import build_sketch
from repro.datasets import analyze_imdb_correlations, decorrelated_imdb
from repro.db import execute_count
from repro.metrics import qerrors, summarize_qerrors
from repro.workload import JobLightConfig, generate_job_light, spec_for_imdb

from conftest import TABLE1_CONFIG, write_result


def _compare_systems(db, sketch, queries):
    truths = np.array([float(max(execute_count(db, q), 1)) for q in queries])
    systems = {
        "Deep Sketch": sketch.estimate_many(queries),
        "HyPer": np.array(
            [HyperEstimator(db, sample_size=1000).estimate(q) for q in queries]
        ),
        "PostgreSQL": np.array(
            [PostgresEstimator(db).estimate(q) for q in queries]
        ),
    }
    return {
        name: summarize_qerrors(qerrors(est, truths))
        for name, est in systems.items()
    }


def test_correlation_ablation(
    benchmark, imdb_full, table1_sketch, joblight_workload
):
    sketch, _ = table1_sketch
    queries, truths = joblight_workload

    report_before = analyze_imdb_correlations(imdb_full)
    assert report_before.is_correlated()

    def run():
        # (a) correlated: the Table 1 artifacts, reused.
        correlated = _compare_systems(imdb_full, sketch, queries)
        # (b) decorrelated: same marginals, dependence destroyed; a fresh
        # sketch is trained on it with the identical configuration.
        flat = decorrelated_imdb(imdb_full, seed=3)
        flat_queries = generate_job_light(
            flat, JobLightConfig(n_queries=70, seed=42)
        )
        flat_sketch, _ = build_sketch(
            flat, spec_for_imdb(), name="decorrelated", config=TABLE1_CONFIG
        )
        decorrelated = _compare_systems(flat, flat_sketch, flat_queries)
        return correlated, decorrelated, analyze_imdb_correlations(flat)

    correlated, decorrelated, report_after = benchmark.pedantic(
        run, rounds=1, iterations=1
    )
    assert not report_after.is_correlated()

    lines = ["Correlation ablation (p95 / mean q-error):"]
    lines.append(f"  {'system':<14} {'correlated':>22} {'decorrelated':>22}")
    for name in ("Deep Sketch", "HyPer", "PostgreSQL"):
        c, d = correlated[name], decorrelated[name]
        lines.append(
            f"  {name:<14} {c.p95:>12.2f}/{c.mean:>8.2f} {d.p95:>13.2f}/{d.mean:>8.2f}"
        )
        benchmark.extra_info[name] = {
            "correlated_p95": round(c.p95, 2),
            "decorrelated_p95": round(d.p95, 2),
        }
    lines.append(
        f"  (dependence audit: kind/year V {report_before.kind_year_cramers_v:.2f}"
        f" -> {report_after.kind_year_cramers_v:.2f}, keyword/era rho "
        f"{report_before.keyword_era_spearman:.2f} -> "
        f"{report_after.keyword_era_spearman:.2f})"
    )
    text = "\n".join(lines)
    print("\n" + text)
    write_result("correlation_ablation", text)

    # The attribution check: traditional estimators' tails must shrink
    # substantially once correlations are removed...
    for name in ("HyPer", "PostgreSQL"):
        assert decorrelated[name].p95 < 0.7 * correlated[name].p95, name
    # ...while on correlated data the sketch holds its Table 1 edge.
    assert correlated["Deep Sketch"].p95 <= correlated["HyPer"].p95
    assert correlated["Deep Sketch"].p95 <= correlated["PostgreSQL"].p95

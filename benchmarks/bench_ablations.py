"""Ablations of the design choices DESIGN.md calls out.

Not a paper table, but the paper (and the companion CIDR paper it
defers to) motivates three specific choices that these harnesses
quantify on our substrate:

* **sample bitmaps as model input** — the demo paper's differentiator
  over prior learned estimators ("we featurize information about
  qualifying base table samples");
* **q-error training objective** — "we train our model with the
  objective of minimizing the mean q-error", vs plain MSE on the
  normalized labels;
* **materialized sample size** — the per-table sample count is a user
  knob in sketch creation (step 1); more samples mean better bitmaps
  but a bigger footprint.
"""

from __future__ import annotations

import numpy as np

from repro.core import SketchBuilder, SketchConfig
from repro.datasets import ImdbConfig, generate_imdb
from repro.db import execute_count
from repro.metrics import geometric_mean_qerror, qerrors
from repro.workload import JobLightConfig, generate_job_light, spec_for_imdb

from conftest import write_result

_TABLES = ("title", "movie_keyword", "movie_info", "cast_info")


def _setup_db():
    return generate_imdb(ImdbConfig(scale=0.25, seed=7))


def _build_variant(db, **overrides):
    config = SketchConfig(
        n_training_queries=4000,
        epochs=12,
        sample_size=overrides.pop("sample_size", 300),
        hidden_units=64,
        seed=3,
        **overrides,
    )
    builder = SketchBuilder(db, spec_for_imdb(tables=_TABLES), config=config)
    return builder.build("ablation")


def _eval_workload(db):
    queries = generate_job_light(db, JobLightConfig(n_queries=40, seed=21))
    queries = [
        q for q in queries if all(t.table in _TABLES for t in q.tables)
    ]
    truths = np.array([float(max(execute_count(db, q), 1)) for q in queries])
    return queries, truths


def _score(sketch, queries, truths):
    return geometric_mean_qerror(qerrors(sketch.estimate_many(queries), truths))


def test_ablation_sample_bitmaps(benchmark):
    """Bitmaps on vs off: runtime sampling must carry real signal."""
    db = _setup_db()
    queries, truths = _eval_workload(db)

    def run():
        with_bitmaps, _ = _build_variant(db, use_sample_bitmaps=True)
        without_bitmaps, _ = _build_variant(db, use_sample_bitmaps=False)
        return (
            _score(with_bitmaps, queries, truths),
            _score(without_bitmaps, queries, truths),
        )

    score_with, score_without = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "Ablation — qualifying-sample bitmaps (geometric-mean q-error):\n"
        f"  with bitmaps    {score_with:8.2f}\n"
        f"  without bitmaps {score_without:8.2f}"
    )
    print("\n" + text)
    write_result("ablation_bitmaps", text)
    benchmark.extra_info["with"] = round(score_with, 3)
    benchmark.extra_info["without"] = round(score_without, 3)
    assert score_with <= score_without * 1.1, "bitmaps should not hurt"


def test_ablation_qerror_vs_mse_loss(benchmark):
    """The paper's q-error objective vs MSE on normalized labels."""
    db = _setup_db()
    queries, truths = _eval_workload(db)

    def run():
        qerr_sketch, qerr_report = _build_variant(db, loss="qerror")
        mse_sketch, mse_report = _build_variant(db, loss="mse")
        return (
            _score(qerr_sketch, queries, truths),
            _score(mse_sketch, queries, truths),
            qerr_report.training.final_val_mean_qerror,
            mse_report.training.final_val_mean_qerror,
        )

    q_eval, mse_eval, q_val, mse_val = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "Ablation — training objective (geometric-mean q-error on eval / "
        "final val mean q-error):\n"
        f"  q-error loss {q_eval:8.2f} / {q_val:8.2f}\n"
        f"  MSE loss     {mse_eval:8.2f} / {mse_val:8.2f}"
    )
    print("\n" + text)
    write_result("ablation_loss", text)
    benchmark.extra_info["qerror_loss"] = round(q_eval, 3)
    benchmark.extra_info["mse_loss"] = round(mse_eval, 3)
    # Both objectives must train a usable model; the q-error loss must be
    # in the same accuracy class as MSE (at paper scale it wins on the
    # tail, at this reduced scale the two are close).
    assert q_val < 10.0 and mse_val < 10.0
    assert q_eval < 2.0 * mse_eval


def test_ablation_sample_size(benchmark):
    """Sample-size knob: bigger samples -> better estimates, larger
    footprint (the step-1 trade-off the demo exposes to users)."""
    db = _setup_db()
    queries, truths = _eval_workload(db)
    sizes = [50, 200, 800]

    def run():
        scores, footprints = [], []
        for size in sizes:
            sketch, _ = _build_variant(db, sample_size=size)
            scores.append(_score(sketch, queries, truths))
            footprints.append(sketch.footprint_bytes())
        return scores, footprints

    scores, footprints = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = ["Ablation — materialized sample size:"]
    for size, score, footprint in zip(sizes, scores, footprints):
        lines.append(
            f"  {size:>5} samples/table  gmean q-error {score:7.2f}  "
            f"footprint {footprint / 1024:7.0f} KiB"
        )
        benchmark.extra_info[f"samples_{size}"] = round(score, 3)
    text = "\n".join(lines)
    print("\n" + text)
    write_result("ablation_sample_size", text)
    # Footprint grows with the sample size...
    assert footprints[-1] > footprints[0]
    # ...and accuracy must not collapse when samples grow.
    assert scores[-1] <= scores[0] * 1.5

"""Model-forward latency/throughput: autograd graph vs compiled session.

PR 1/2 vectorized everything around the model — bitmaps, featurization,
batching, caching — leaving the MSCN forward itself as the dominant
serving cost: every op in the autograd ``Tensor`` graph allocates a
node, a backward closure, and a float64 intermediate that eval mode
throws away.  This harness quantifies what the compiled
``InferenceSession`` (flat in-place numpy calls against pooled buffers;
``src/repro/nn/inference.py``) buys back:

* **single-query latency** — one forward on a batch of 1, the paper's
  "within milliseconds" interactive path;
* **batched throughput** — queries/second through a 256-query forward,
  the serving engines' micro-batch path;

each for the autograd forward, the float64 session, and the float32
session, plus parity checks (compiled vs autograd <= 1e-12 relative in
float64, <= 1e-6 in float32) and an end-to-end serving check: a trained
sketch's ``estimate_many`` (compiled) against the pre-compilation
autograd estimate path on a real workload.

Acceptance gates (asserted here, recorded in the JSON):

* full run — float32 batched throughput >= 3x autograd, float64 >= 2x;
  single-query latency >= 2x better in both dtypes; parity bounds hold.
* ``--tiny`` (CI smoke) — compiled (float32) >= 2x autograd on the
  256-query batch; parity bounds hold.  The remaining wall-clock gates
  are skipped: shared CI runners are too noisy for tight ratios.

Results are written to ``benchmarks/results/BENCH_inference.json``
(uploaded as a CI artifact); see ``docs/performance.md`` for how to
read them.

Run from the repository root::

    python benchmarks/bench_inference.py          # full (a minute or two)
    python benchmarks/bench_inference.py --tiny   # CI smoke run (seconds)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

import numpy as np

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import SketchConfig  # noqa: E402
from repro.core.batches import collate  # noqa: E402
from repro.core.featurization import QueryFeatures  # noqa: E402
from repro.core.mscn import MSCN  # noqa: E402
from repro.datasets import ImdbConfig, generate_imdb  # noqa: E402
from repro.demo import SketchManager  # noqa: E402
from repro.metrics import MIN_CARDINALITY  # noqa: E402
from repro.nn.inference import InferenceSession  # noqa: E402
from repro.sampling import query_bitmaps  # noqa: E402
from repro.workload import spec_for_imdb  # noqa: E402
from repro.workload.generator import TrainingQueryGenerator  # noqa: E402

#: Full-run acceptance thresholds (the PR's headline claim).
MIN_BATCHED_SPEEDUP_F32 = 3.0
MIN_BATCHED_SPEEDUP_F64 = 2.0
MIN_SINGLE_SPEEDUP = 2.0
#: CI smoke threshold on the 256-query batch.
MIN_TINY_BATCHED_SPEEDUP = 2.0
#: Parity bounds (relative): compiled vs autograd forward outputs.
MAX_REL_F64 = 1e-12
MAX_REL_F32 = 1e-6
#: End-to-end: compiled serving estimates vs the autograd estimate path.
MAX_REL_SERVING = 1e-9


def best_time(fn, iterations: int, repeats: int = 3) -> float:
    """Seconds per call: best mean over ``repeats`` timed blocks."""
    fn()  # warmup (populates buffer pools, JITs nothing — this is numpy)
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        for _ in range(iterations):
            fn()
        best = min(best, (time.perf_counter() - start) / iterations)
    return best


def synthetic_batch(rng, batch_size, table_dim, join_dim, predicate_dim):
    """A ragged batch shaped like real serving traffic (1-4 tables, etc.)."""
    features = []
    for _ in range(batch_size):
        n_t = int(rng.integers(1, 5))
        n_j = max(n_t - 1, 1)
        n_p = int(rng.integers(1, 5))
        features.append(
            QueryFeatures(
                tables=rng.random((n_t, table_dim)),
                joins=rng.random((n_j, join_dim)),
                predicates=rng.random((n_p, predicate_dim)),
            )
        )
    return collate(features)


def max_rel(got: np.ndarray, ref: np.ndarray) -> float:
    return float(np.max(np.abs(got - ref) / np.abs(ref)))


def run_forward_bench(args) -> dict:
    """Phase 1: the model forward in isolation, all three paths."""
    table_dim = 6 + args.samples  # one-hot table ids + sample bitmap
    join_dim, predicate_dim = 7, 40
    rng = np.random.default_rng(args.seed)
    model = MSCN(table_dim, join_dim, predicate_dim,
                 hidden_units=args.hidden, seed=args.seed)
    model.eval()
    session64 = InferenceSession(model, dtype=np.float64)
    session32 = InferenceSession(model, dtype=np.float32)

    big = synthetic_batch(rng, args.batch, table_dim, join_dim, predicate_dim)
    one = synthetic_batch(rng, 1, table_dim, join_dim, predicate_dim)

    reference = model(big).numpy()
    parity = {
        "forward_float64_max_rel": max_rel(session64.run(big), reference),
        "forward_float32_max_rel": max_rel(session32.run(big), reference),
    }

    t_auto_big = best_time(lambda: model(big).numpy(), args.iters_batched)
    t_f64_big = best_time(lambda: session64.run(big), args.iters_batched)
    t_f32_big = best_time(lambda: session32.run(big), args.iters_batched)
    t_auto_one = best_time(lambda: model(one).numpy(), args.iters_single)
    t_f64_one = best_time(lambda: session64.run(one), args.iters_single)
    t_f32_one = best_time(lambda: session32.run(one), args.iters_single)

    return {
        "single_query": {
            "autograd_us": t_auto_one * 1e6,
            "compiled_float64_us": t_f64_one * 1e6,
            "compiled_float32_us": t_f32_one * 1e6,
            "speedup_float64": t_auto_one / t_f64_one,
            "speedup_float32": t_auto_one / t_f32_one,
        },
        "batched": {
            "batch_size": args.batch,
            "autograd_qps": args.batch / t_auto_big,
            "compiled_float64_qps": args.batch / t_f64_big,
            "compiled_float32_qps": args.batch / t_f32_big,
            "speedup_float64": t_auto_big / t_f64_big,
            "speedup_float32": t_auto_big / t_f32_big,
        },
        "parity": parity,
    }


def run_serving_parity(args) -> dict:
    """Phase 2: a real sketch's compiled estimates vs the autograd path."""
    db = generate_imdb(ImdbConfig(scale=args.scale, seed=7))
    manager = SketchManager(db)
    manager.create_sketch(
        "bench",
        spec_for_imdb(),
        config=SketchConfig(
            sample_size=min(args.samples, 200),
            n_training_queries=args.queries,
            epochs=args.epochs,
            hidden_units=args.hidden,
            seed=args.seed,
        ),
    )
    sketch = manager.get_sketch("bench")
    workload = TrainingQueryGenerator(
        db, spec_for_imdb(), seed=args.seed + 1
    ).draw_many(args.distinct)

    compiled = sketch.estimate_many(workload, use_cache=False)
    autograd = []
    for query in workload:
        bitmaps = query_bitmaps(sketch.samples, query)
        features = sketch.featurizer.featurize_query(
            query, bitmaps, db=sketch._catalog
        )
        prediction = float(sketch.model(collate([features])).numpy()[0])
        autograd.append(
            max(sketch.featurizer.denormalize_label(prediction), MIN_CARDINALITY)
        )
    return {
        "n_queries": len(workload),
        "serving_max_rel": max_rel(compiled, np.asarray(autograd)),
    }


def run(args) -> int:
    print(
        f"forward bench: batch={args.batch}, samples={args.samples}, "
        f"hidden={args.hidden}...",
        file=sys.stderr,
    )
    result = run_forward_bench(args)
    print(
        f"serving parity: scale={args.scale}, {args.queries} training "
        f"queries, {args.epochs} epochs...",
        file=sys.stderr,
    )
    result["parity"].update(run_serving_parity(args))

    single, batched, parity = (
        result["single_query"], result["batched"], result["parity"]
    )
    gates = {
        "forward_float64_parity": parity["forward_float64_max_rel"] <= MAX_REL_F64,
        "forward_float32_parity": parity["forward_float32_max_rel"] <= MAX_REL_F32,
        "serving_parity": parity["serving_max_rel"] <= MAX_REL_SERVING,
    }
    if args.tiny:
        gates["tiny_batched_speedup"] = (
            max(batched["speedup_float64"], batched["speedup_float32"])
            >= MIN_TINY_BATCHED_SPEEDUP
        )
    else:
        gates["batched_speedup_float32"] = (
            batched["speedup_float32"] >= MIN_BATCHED_SPEEDUP_F32
        )
        gates["batched_speedup_float64"] = (
            batched["speedup_float64"] >= MIN_BATCHED_SPEEDUP_F64
        )
        gates["single_speedup_float64"] = (
            single["speedup_float64"] >= MIN_SINGLE_SPEEDUP
        )
        gates["single_speedup_float32"] = (
            single["speedup_float32"] >= MIN_SINGLE_SPEEDUP
        )

    result["config"] = {
        "mode": "tiny" if args.tiny else "full",
        "batch": args.batch,
        "samples": args.samples,
        "hidden": args.hidden,
        "seed": args.seed,
        "scale": args.scale,
        "queries": args.queries,
        "epochs": args.epochs,
        "distinct": args.distinct,
    }
    result["gates"] = gates
    result["pass"] = all(gates.values())

    results_dir = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "results"
    )
    os.makedirs(results_dir, exist_ok=True)
    out_path = os.path.join(results_dir, "BENCH_inference.json")
    with open(out_path, "w") as f:
        json.dump(result, f, indent=2)
        f.write("\n")

    print(
        f"single query : autograd {single['autograd_us']:8.1f} us | "
        f"f64 {single['compiled_float64_us']:7.1f} us "
        f"({single['speedup_float64']:.1f}x) | "
        f"f32 {single['compiled_float32_us']:7.1f} us "
        f"({single['speedup_float32']:.1f}x)"
    )
    print(
        f"batched ({batched['batch_size']:4d}): autograd "
        f"{batched['autograd_qps']:8.0f} q/s | "
        f"f64 {batched['compiled_float64_qps']:8.0f} q/s "
        f"({batched['speedup_float64']:.1f}x) | "
        f"f32 {batched['compiled_float32_qps']:8.0f} q/s "
        f"({batched['speedup_float32']:.1f}x)"
    )
    print(
        f"parity       : forward f64 {parity['forward_float64_max_rel']:.2e} | "
        f"forward f32 {parity['forward_float32_max_rel']:.2e} | "
        f"serving {parity['serving_max_rel']:.2e} "
        f"({parity['n_queries']} queries)"
    )
    print(f"results written to {os.path.relpath(out_path)}")

    for name, ok in gates.items():
        if not ok:
            print(f"FAIL: gate {name}", file=sys.stderr)
    if result["pass"]:
        print(
            f"PASS: compiled forward {batched['speedup_float32']:.1f}x (f32) / "
            f"{batched['speedup_float64']:.1f}x (f64) batched, "
            f"{single['speedup_float64']:.1f}x single-query (f64)",
            file=sys.stderr,
        )
    return 0 if result["pass"] else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--batch", type=int, default=256,
                        help="batched-throughput batch size")
    parser.add_argument("--samples", type=int, default=500,
                        help="sample bitmap width (sets table_dim)")
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--iters-single", type=int, default=300,
                        help="timed iterations for single-query latency")
    parser.add_argument("--iters-batched", type=int, default=20,
                        help="timed iterations for batched throughput")
    parser.add_argument("--scale", type=float, default=0.1,
                        help="synthetic IMDb scale for the serving phase")
    parser.add_argument("--queries", type=int, default=600,
                        help="training queries for the serving-phase sketch")
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--distinct", type=int, default=48,
                        help="workload size for the serving parity check")
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test configuration for CI (seconds)")
    args = parser.parse_args(argv)
    if args.tiny:
        args.samples = min(args.samples, 100)
        args.iters_single = min(args.iters_single, 60)
        args.iters_batched = min(args.iters_batched, 6)
        args.scale = min(args.scale, 0.05)
        args.queries = min(args.queries, 200)
        args.epochs = min(args.epochs, 1)
        args.distinct = min(args.distinct, 24)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())

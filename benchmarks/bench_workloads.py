"""Templated workloads: generalization splits + bursty serving stress.

The paper's headline claim is that the learned estimator generalizes to
queries it was not trained on.  A uniform query split only tests
held-out *literals*; the DSB-style methodology splits by *template*, so
the test side contains join/predicate shapes the model never saw.  This
harness quantifies both, then stresses the serving tier with the same
suite replayed as production-shaped traffic:

* the **suite** — a seeded :class:`~repro.workload.suite.TemplateSuite`
  over the synthetic IMDb (range, string, IN, and BETWEEN-style
  predicate slots; join chains up to ``--max-joins`` deep, including
  self-joins), labeled with exact cardinalities, with a regeneration
  determinism check (same seed ⇒ byte-identical digest);
* the **generalization experiment** — one sketch trained on the
  training templates' instances, per-template q-error tails
  (p50/p95/p99/max) reported for held-out literals (**in-template**)
  and held-out templates (**cross-template**); the cross-template p99
  is the worst per-template p99, never an average;
* the **bursty stress scenario** — the suite replayed open-loop
  (Zipf-skewed template mix, on/off bursts) through a
  :class:`~repro.serve.gateway.SketchGateway` over live HTTP backends
  with bounded queues, auditing the degradation contract: zero hung
  futures, failures only as structured codes, queue bound held.

Correctness gates (determinism, both splits reported, stress audit) run
in **every** configuration; there are no wall-clock gates — the
q-error*quality* of a tiny sketch is reported, not gated, because a
2-epoch CI model's tails are noise.

Every run writes machine-readable results to
``benchmarks/results/BENCH_workloads.json`` (sections + config + gates
+ pass) plus the human-readable ``bench_workloads.txt``.

Run from the repository root::

    python benchmarks/bench_workloads.py          # full (minutes)
    python benchmarks/bench_workloads.py --tiny   # CI smoke run (seconds)
"""

from __future__ import annotations

import argparse
import json
import math
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.baselines.postgres import PostgresEstimator  # noqa: E402
from repro.core import SketchConfig, run_generalization_experiment  # noqa: E402
from repro.datasets import ImdbConfig, generate_imdb  # noqa: E402
from repro.demo import SketchManager  # noqa: E402
from repro.metrics import qerrors, summarize_qerrors  # noqa: E402
from repro.rng import make_rng, spawn  # noqa: E402
from repro.serve.bench import run_bursty_stress_benchmark  # noqa: E402
from repro.workload import (  # noqa: E402
    SuiteConfig,
    TrafficConfig,
    generate_template_suite,
    spec_for_imdb_templates,
)
from repro.workload.splits import (  # noqa: E402
    split_by_template,
    split_within_template,
)

#: The ``--tiny`` smoke configuration: small enough for CI seconds,
#: large enough that both split sides keep several templates and the
#: bursty replay overruns the bounded queues.
TINY_WORKLOADS_ARGS = {
    "scale": 0.06,
    "templates": 7,
    "per_template": 24,
    "max_joins": 3,
    "epochs": 2,
    "samples": 50,
    "hidden": 16,
    "requests": 160,
    "rate": 3000.0,
}


def apply_tiny_args(args) -> None:
    """Overwrite an argparse namespace with the tiny smoke configuration."""
    for key, value in TINY_WORKLOADS_ARGS.items():
        setattr(args, key, value)


def _finite_tails(block: dict) -> bool:
    """Every reported tail value is a finite float (no NaN/inf leaks)."""
    for tails in block.values():
        for key in ("p50", "p95", "p99", "max"):
            if not math.isfinite(tails[key]):
                return False
    return True


def _baseline_eval(estimator, suite) -> dict:
    """Per-template q-error tails of a baseline estimator on a suite.

    Mirrors :func:`repro.core.training.evaluate_on_suite` so the
    baseline columns in ``BENCH_workloads.json`` line up one-to-one
    with the learned estimator's blocks.
    """
    queries, cards = suite.labeled_pairs()
    estimates = [estimator.estimate(q) for q in queries]
    errors = qerrors(estimates, cards)
    per_template = {}
    offset = 0
    for entry in suite.templates:
        chunk = errors[offset : offset + len(entry)]
        offset += len(entry)
        summary = summarize_qerrors(chunk)
        per_template[entry.name] = {
            "p50": summary.median,
            "p95": summary.p95,
            "p99": summary.p99,
            "max": summary.max,
            "count": summary.count,
        }
    return {
        "per_template": per_template,
        "overall": summarize_qerrors(errors).as_dict(),
    }


def run(args) -> int:
    db = generate_imdb(ImdbConfig(scale=args.scale, seed=7))
    spec = spec_for_imdb_templates(max_joins=args.max_joins)
    suite_config = SuiteConfig(
        n_templates=args.templates,
        queries_per_template=args.per_template,
        max_joins=args.max_joins,
    )

    # -- suite + determinism check -------------------------------------
    print(
        f"generating suite ({args.templates} templates x "
        f"{args.per_template} instances, scale={args.scale})...",
        file=sys.stderr,
    )
    suite = generate_template_suite(db, spec, suite_config, seed=args.seed)
    digest = suite.digest()
    redrawn = generate_template_suite(db, spec, suite_config, seed=args.seed)
    deterministic = redrawn.digest() == digest
    print("labeling suite (exact COUNT(*) per instance)...", file=sys.stderr)
    labeled = suite.label(db, min_queries_per_template=4)

    text_lines = [
        f"suite             : {len(suite)} templates, {suite.n_queries} "
        f"instances drawn (digest {digest[:12]}..., "
        f"{'deterministic' if deterministic else 'NON-DETERMINISTIC'})",
        f"labeled           : {len(labeled)} templates survive with "
        f"{labeled.n_queries} non-empty instances",
        "  "
        + ", ".join(f"{t.name}({len(t)})" for t in labeled.templates),
    ]

    # -- generalization experiment -------------------------------------
    print(
        "running generalization experiment (held-out literals vs "
        "held-out templates)...",
        file=sys.stderr,
    )
    report = run_generalization_experiment(
        db,
        spec,
        labeled,
        sketch_config=SketchConfig(
            sample_size=args.samples,
            epochs=args.epochs,
            hidden_units=args.hidden,
            seed=args.seed,
        ),
        test_fraction=args.test_fraction,
        holdout_fraction=args.holdout_fraction,
        seed=args.seed,
        name="workload-bench",
    )
    gen_json = report.to_json()
    text_lines += [
        "",
        f"generalization    : trained on {report.n_train_queries} instances "
        f"of {len(report.train_templates)} templates; "
        f"{len(report.test_templates)} templates held out",
        f"  in-template     : overall p50 "
        f"{report.in_template.overall.median:8.2f}, p95 "
        f"{report.in_template.overall.p95:8.2f}, p99 "
        f"{report.in_template.overall.p99:8.2f}",
        f"  cross-template  : overall p50 "
        f"{report.cross_template.overall.median:8.2f}, p95 "
        f"{report.cross_template.overall.p95:8.2f}, worst per-template "
        f"p99 {report.cross_template_p99:8.2f}",
    ]
    for name, tails in sorted(gen_json["cross_template"]["per_template"].items()):
        text_lines.append(
            f"    {name:<16}: p50 {tails['p50']:8.2f}, p95 "
            f"{tails['p95']:8.2f}, p99 {tails['p99']:8.2f}, max "
            f"{tails['max']:10.2f} ({tails['count']} queries)"
        )

    # -- PostgreSQL baseline on the same held-out sides ----------------
    # Reconstruct the experiment's exact splits: the generalization
    # helper spawns (outer, inner, build) streams from the seed, so
    # re-spawning here lands the baseline on the identical test suites.
    print(
        "scoring PostgreSQL baseline on the same held-out suites...",
        file=sys.stderr,
    )
    outer_rng, inner_rng, _build_rng = spawn(make_rng(args.seed), 3)
    outer = split_by_template(labeled, args.test_fraction, seed=outer_rng)
    inner = split_within_template(
        outer.train, args.holdout_fraction, seed=inner_rng
    )
    postgres = PostgresEstimator(db)
    baselines = {
        "postgres": {
            "in_template": _baseline_eval(postgres, inner.test),
            "cross_template": _baseline_eval(postgres, outer.test),
        }
    }
    pg_cross = baselines["postgres"]["cross_template"]
    pg_in = baselines["postgres"]["in_template"]
    text_lines += [
        "",
        f"postgres baseline : in-template p50 "
        f"{pg_in['overall']['median']:8.2f}, p95 "
        f"{pg_in['overall']['95th']:8.2f}; cross-template p50 "
        f"{pg_cross['overall']['median']:8.2f}, p95 "
        f"{pg_cross['overall']['95th']:8.2f}",
    ]
    for name in sorted(pg_cross["per_template"]):
        pg = pg_cross["per_template"][name]
        learned = gen_json["cross_template"]["per_template"].get(name)
        learned_txt = (
            f"learned p99 {learned['p99']:8.2f}" if learned else "learned n/a"
        )
        text_lines.append(
            f"    {name:<16}: postgres p99 {pg['p99']:8.2f} vs {learned_txt}"
        )

    # -- bursty gateway stress -----------------------------------------
    print(
        f"running bursty gateway stress ({args.requests} open-loop "
        f"requests, {args.backends} backends, "
        f"max_queue_depth={args.queue_depth})...",
        file=sys.stderr,
    )
    manager = SketchManager(db=None)
    manager.register_sketch(report.sketch)
    stress = run_bursty_stress_benchmark(
        manager,
        "workload-bench",
        labeled,
        traffic=TrafficConfig(
            n_requests=args.requests,
            rate_qps=args.rate,
            burst_on_s=0.02,
            burst_off_s=0.03,
        ),
        n_backends=args.backends,
        max_queue_depth=args.queue_depth,
        max_batch_size=max(8, args.queue_depth // 2),
        seed=args.seed + 1,
    )
    text_lines += ["", stress.report()]
    text = "\n".join(text_lines)
    print(text)

    # ------------------------------------------------------------------
    # gates
    # ------------------------------------------------------------------
    gates = {
        "suite_deterministic": deterministic,
        # Both split sides must report per-template tails — the
        # acceptance artifact is the cross-template p99, not an average.
        "split_sides_reported": (
            len(gen_json["in_template"]["per_template"]) > 0
            and len(gen_json["cross_template"]["per_template"]) > 0
        ),
        "cross_template_p99_finite": math.isfinite(report.cross_template_p99),
        "tails_finite": (
            _finite_tails(gen_json["in_template"]["per_template"])
            and _finite_tails(gen_json["cross_template"]["per_template"])
        ),
        # The baseline columns must cover exactly the estimator's
        # templates (same reconstructed splits) with finite tails.
        "baseline_templates_match": (
            set(pg_in["per_template"])
            == set(gen_json["in_template"]["per_template"])
            and set(pg_cross["per_template"])
            == set(gen_json["cross_template"]["per_template"])
        ),
        "baseline_tails_finite": (
            _finite_tails(pg_in["per_template"])
            and _finite_tails(pg_cross["per_template"])
        ),
        # The degradation contract under bursty open-loop load.
        "stress_zero_hung_futures": stress.replay.zero_hung,
        "stress_structured_codes_only": stress.replay.structured_only,
        "stress_queue_bounded": stress.bounded,
        "stress_served_any": stress.replay.n_ok > 0,
        "stress_accounting": (
            stress.replay.n_ok + stress.replay.n_failed
            == stress.replay.n_requests
        ),
    }
    ok = all(gates.values())

    # ------------------------------------------------------------------
    # machine-readable results (BENCH_workloads.json)
    # ------------------------------------------------------------------
    payload = {
        "suite": {
            "n_templates_drawn": len(suite),
            "n_queries_drawn": suite.n_queries,
            "n_templates_labeled": len(labeled),
            "n_queries_labeled": labeled.n_queries,
            "digest": digest,
            "deterministic": deterministic,
            "per_template_counts": {
                t.name: len(t) for t in labeled.templates
            },
        },
        "generalization": gen_json,
        "baselines": baselines,
        "stress": stress.audit(),
        "config": {
            "mode": "tiny" if args.tiny else "full",
            "scale": args.scale,
            "templates": args.templates,
            "per_template": args.per_template,
            "max_joins": args.max_joins,
            "epochs": args.epochs,
            "samples": args.samples,
            "hidden": args.hidden,
            "seed": args.seed,
            "test_fraction": args.test_fraction,
            "holdout_fraction": args.holdout_fraction,
            "requests": args.requests,
            "rate_qps": args.rate,
            "backends": args.backends,
            "queue_depth": args.queue_depth,
        },
        "gates": gates,
        "pass": ok,
    }

    results_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "bench_workloads.txt"), "w") as f:
        f.write(text.rstrip() + "\n")
    with open(os.path.join(results_dir, "BENCH_workloads.json"), "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    for gate, passed in gates.items():
        if not passed:
            print(f"FAIL: gate {gate!r} failed", file=sys.stderr)
    if ok:
        shed = stress.replay.code_counts.get("shed", 0)
        print(
            f"PASS: cross-template p99 {report.cross_template_p99:.1f} "
            f"(in-template p99 {report.in_template.overall.p99:.1f}) over "
            f"{len(report.test_templates)} held-out template(s); stress "
            f"{stress.replay.n_ok}/{stress.n_requests} served, {shed} shed "
            f"structured, 0 hung futures, queue peaks "
            f"{stress.queue_depth_peaks} <= {stress.max_queue_depth}",
            file=sys.stderr,
        )
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.2,
                        help="synthetic IMDb scale factor")
    parser.add_argument("--templates", type=int, default=12,
                        help="templates to draw for the suite")
    parser.add_argument("--per-template", dest="per_template", type=int,
                        default=50, help="instances per template")
    parser.add_argument("--max-joins", dest="max_joins", type=int, default=4)
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--samples", type=int, default=300)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--test-fraction", dest="test_fraction", type=float,
                        default=0.25, help="fraction of templates held out")
    parser.add_argument("--holdout-fraction", dest="holdout_fraction",
                        type=float, default=0.2,
                        help="fraction of literals held out per training "
                        "template (the in-template test side)")
    parser.add_argument("--requests", type=int, default=512,
                        help="open-loop requests for the stress scenario")
    parser.add_argument("--rate", type=float, default=3000.0,
                        help="arrival rate inside ON windows (q/s)")
    parser.add_argument("--backends", type=int, default=2)
    parser.add_argument("--queue-depth", dest="queue_depth", type=int,
                        default=16, help="per-backend max_queue_depth")
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test configuration for CI (seconds)")
    args = parser.parse_args(argv)
    if args.tiny:
        apply_tiny_args(args)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())

"""Table 1 — estimation errors on the JOB-light workload.

Paper reference (q-errors, original IMDb + real systems):

                 median   90th   95th   99th    max   mean
    Deep Sketch    3.82   78.4    362    927   1110   57.9
    HyPer          14.6    454   1208   2764   4228    224
    PostgreSQL     7.93    164   1104   2912   3477    174

Absolute numbers differ on a synthetic 20k-title database, but the
*shape* must hold: the Deep Sketch dominates both traditional
estimators at every reported statistic, with the gap widening in the
tail.  The harness regenerates the table, asserts the shape, and
additionally times per-query estimation for every system.
"""

from __future__ import annotations

import numpy as np

from repro.metrics import format_table, qerrors, summarize_qerrors

from conftest import write_result


def _table_rows(sketch, queries, truths, baselines):
    estimates = {"Deep Sketch": sketch.estimate_many(queries)}
    for name, estimator in baselines.items():
        estimates[name] = np.array([estimator.estimate(q) for q in queries])
    return {
        name: summarize_qerrors(qerrors(est, truths))
        for name, est in estimates.items()
    }


def test_table1_qerrors(benchmark, table1_sketch, joblight_workload, baseline_estimators):
    """Regenerate Table 1 and check the paper's dominance shape."""
    sketch, _ = table1_sketch
    queries, truths = joblight_workload

    rows = benchmark.pedantic(
        _table_rows,
        args=(sketch, queries, truths, baseline_estimators),
        rounds=1,
        iterations=1,
    )

    table = format_table(rows, "Table 1 (JOB-light, synthetic IMDb)")
    print("\n" + table)
    write_result("table1_joblight", table)
    for name, summary in rows.items():
        benchmark.extra_info[name] = summary.as_dict()

    sketch_row = rows["Deep Sketch"]
    for competitor in ("HyPer", "PostgreSQL"):
        other = rows[competitor]
        # Dominance at every reported percentile (the paper's headline).
        assert sketch_row.median <= other.median * 1.35, competitor
        assert sketch_row.p90 <= other.p90, competitor
        assert sketch_row.p95 <= other.p95, competitor
        assert sketch_row.p99 <= other.p99, competitor
        assert sketch_row.max <= other.max, competitor
        assert sketch_row.mean <= other.mean, competitor
        # The tail gap must be substantial (paper: 3-8x at p95+).
        assert other.p99 >= 2.0 * sketch_row.p99, competitor


def test_table1_sketch_estimation_latency(benchmark, table1_sketch, joblight_workload):
    """Per-query Deep Sketch estimation cost over the whole workload."""
    sketch, _ = table1_sketch
    queries, _ = joblight_workload

    def estimate_all():
        return [sketch.estimate(q) for q in queries]

    values = benchmark(estimate_all)
    assert len(values) == len(queries)


def test_table1_hyper_estimation_latency(benchmark, baseline_estimators, joblight_workload):
    queries, _ = joblight_workload
    hyper = baseline_estimators["HyPer"]
    benchmark(lambda: [hyper.estimate(q) for q in queries])


def test_table1_postgres_estimation_latency(benchmark, baseline_estimators, joblight_workload):
    queries, _ = joblight_workload
    postgres = baseline_estimators["PostgreSQL"]
    benchmark(lambda: [postgres.estimate(q) for q in queries])


def test_table1_truth_execution_latency(benchmark, truth_oracle, joblight_workload):
    """Exact execution cost — the baseline the sketch's speed is measured
    against (the demo executes truths on HyPer while sketches answer in
    milliseconds)."""
    queries, _ = joblight_workload

    def execute_all():
        # Bypass the oracle cache to measure real execution.
        from repro.db import execute_count

        return [execute_count(truth_oracle.db, q) for q in queries]

    benchmark.pedantic(execute_all, rounds=2, iterations=1)

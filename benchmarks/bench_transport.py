"""Transport fast path: JSON keep-alive vs binary frames vs in-process.

PR 9's perf claim, quantified.  The harness builds a tiny sketch,
starts a real :class:`~repro.serve.http.SketchHTTPServer` (which runs
its binary frame listener next to the HTTP socket), and measures the
same request stream through three doors:

* **in-process** — the ``SketchServer`` facade; the floor every
  transport's overhead is measured against;
* **JSON/HTTP** — the compatibility transport, now over *keep-alive*
  pooled connections.  ``connections_opened`` is gated: a sequential
  client must dial once, not once per request (the regression this
  bench exists to catch — the SDK used to open a fresh connection per
  round trip);
* **binary frames** — the negotiated zero-parse transport
  (:mod:`repro.serve.wire`); per-request overhead of the batched path
  is the headline number (<50µs/request on a warm localhost pair, vs
  ~1.2ms for one-shot JSON singles).

Every path is parity-gated at 1e-12 against the in-process answers —
a faster wire must not change a single number.

The **shared-memory section** measures the other half of the zero-copy
story: one process pool shipped pickled snapshots, one shipped
:class:`~repro.serve.shm.SegmentDescriptor` handles.  Gates: the
descriptor crossing the process boundary is a fraction of the pickle
blob, every worker actually maps the published segment
(``/proc/<pid>/maps``) instead of holding a private copy, estimates are
*exactly* equal (same bytes, not approximately), and no segment
survives engine close.  Worker RSS is recorded alongside.

Timing gates run only in the full configuration (``--tiny`` keeps the
correctness and lifecycle gates; sub-millisecond localhost timings on
shared CI runners are too noisy for hard ratios).

Every run writes machine-readable results to
``benchmarks/results/BENCH_transport.json`` (sections + config + gates
+ pass) plus the human-readable ``bench_transport.txt``.

Run from the repository root::

    python benchmarks/bench_transport.py          # full (minutes)
    python benchmarks/bench_transport.py --tiny   # CI smoke run (seconds)
"""

from __future__ import annotations

import argparse
import json
import os
import pickle
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np  # noqa: E402

from repro.core import SketchConfig  # noqa: E402
from repro.datasets import ImdbConfig, generate_imdb  # noqa: E402
from repro.demo import SketchManager  # noqa: E402
from repro.serve import (  # noqa: E402
    RemoteSketchServer,
    ServeConfig,
    SketchHTTPServer,
    SketchServer,
    live_segment_names,
)
from repro.serve.bench import apply_tiny_args  # noqa: E402
from repro.workload import (  # noqa: E402
    JobLightConfig,
    generate_job_light,
    spec_for_imdb,
)

#: Parity bound between any transport and the in-process facade.
PARITY_RTOL = 1e-12

#: Full-configuration gate: the binary batched path must cost less than
#: this much wire overhead per request (µs) over the in-process floor.
MAX_BINARY_BATCH_OVERHEAD_US = 50.0

#: Keep-alive gate: a sequential client's whole run must fit in this
#: many TCP dials per transport (one, plus one for slack on a dropped
#: idle connection).  The one-shot defect dialed once per request.
MAX_CONNECTIONS_PER_CLIENT = 2


def _max_rel_diff(values, reference) -> float:
    values = np.asarray(values, dtype=np.float64)
    reference = np.asarray(reference, dtype=np.float64)
    scale = np.maximum(np.abs(reference), 1e-300)
    return float(np.max(np.abs(values - reference) / scale)) if len(values) else 0.0


def _worker_rss_kb(pids) -> dict[int, int]:
    rss = {}
    for pid in pids:
        try:
            with open(f"/proc/{pid}/status") as f:
                for line in f:
                    if line.startswith("VmRSS:"):
                        rss[pid] = int(line.split()[1])
                        break
        except OSError:  # pragma: no cover - non-Linux / worker gone
            pass
    return rss


def _workers_mapping_segment(pids, segment_name: str) -> list[bool]:
    mapped = []
    for pid in pids:
        try:
            with open(f"/proc/{pid}/maps") as f:
                mapped.append(segment_name in f.read())
        except OSError:  # pragma: no cover - non-Linux / worker gone
            mapped.append(False)
    return mapped


def run(args) -> int:
    db = generate_imdb(ImdbConfig(scale=args.scale, seed=7))
    manager = SketchManager(db)
    print(
        f"building sketch (scale={args.scale}, {args.queries} training "
        f"queries, {args.epochs} epochs)...",
        file=sys.stderr,
    )
    manager.create_sketch(
        "bench",
        spec_for_imdb(),
        config=SketchConfig(
            sample_size=args.samples,
            n_training_queries=args.queries,
            epochs=args.epochs,
            hidden_units=args.hidden,
            seed=args.seed,
        ),
    )
    distinct = generate_job_light(
        db, JobLightConfig(n_queries=args.distinct, seed=args.seed + 1)
    )
    stream = [distinct[i % len(distinct)] for i in range(args.batch)]
    singles = stream[: args.singles]
    text_lines: list[str] = []

    # ------------------------------------------------------------------
    # in-process floor
    # ------------------------------------------------------------------
    config = ServeConfig(use_cache=False, max_batch_size=64)
    with SketchServer(manager, config) as inproc:
        t0 = time.perf_counter()
        for query in singles:
            inproc.estimate(query)
        inproc_single_s = time.perf_counter() - t0
        t0 = time.perf_counter()
        reference = [r.estimate for r in inproc.serve(list(stream))]
        inproc_batch_s = time.perf_counter() - t0
    assert all(v is not None for v in reference)

    # ------------------------------------------------------------------
    # the two wire transports against one live front door
    # ------------------------------------------------------------------
    transports: dict[str, dict] = {}
    with SketchHTTPServer(manager, config, port=0) as server:
        for name in ("json", "binary"):
            print(f"measuring {name} transport...", file=sys.stderr)
            with RemoteSketchServer(server.url, transport=name) as client:
                negotiated = client.negotiate_transport()
                t0 = time.perf_counter()
                for query in singles:
                    client.estimate(query)
                single_s = time.perf_counter() - t0
                opened = client.connections_opened
            # A fresh client for the batch so its server-reported
            # timing window holds exactly the one batched call — the
            # gated overhead is wall minus server handling time: pure
            # marshalling + network, independent of engine scheduling
            # (and of client/server CPU contention on small hosts).
            with RemoteSketchServer(server.url, transport=name) as client:
                client.negotiate_transport()
                t0 = time.perf_counter()
                answers = client.estimate_many(list(stream))
                batch_s = time.perf_counter() - t0
                values = [r.estimate for r in answers]
                timings = client.timings()
            server_s = timings["server"]["p50"] * len(stream)
            transports[name] = {
                "negotiated": negotiated,
                "n_singles": len(singles),
                "n_batch": len(stream),
                "single_seconds": single_s,
                "batch_seconds": batch_s,
                "batch_server_seconds": server_s,
                "single_overhead_us_per_request": (
                    (single_s - inproc_single_s) / len(singles) * 1e6
                ),
                "batch_overhead_us_per_request": (
                    (batch_s - server_s) / len(stream) * 1e6
                ),
                "batch_vs_inproc_us_per_request": (
                    (batch_s - inproc_batch_s) / len(stream) * 1e6
                ),
                "connections_opened": opened,
                "max_rel_diff": _max_rel_diff(values, reference),
            }

    for name, t in transports.items():
        text_lines.append(
            f"{name:7s}: singles {t['single_seconds']:7.3f}s "
            f"({t['single_overhead_us_per_request']:8.1f}us/req overhead), "
            f"batch {t['batch_seconds']:7.3f}s "
            f"({t['batch_overhead_us_per_request']:8.1f}us/req overhead), "
            f"dials {t['connections_opened']}, "
            f"max rel diff {t['max_rel_diff']:.2e}"
        )
    text_lines.insert(
        0,
        f"inproc : singles {inproc_single_s:7.3f}s, "
        f"batch {inproc_batch_s:7.3f}s "
        f"({len(singles)} singles, {len(stream)}-request batch)",
    )

    # ------------------------------------------------------------------
    # shared-memory snapshots: ship bytes, mapping, RSS, parity
    # ------------------------------------------------------------------
    print("measuring snapshot shipping (pickle vs shm)...", file=sys.stderr)
    sketch = manager.get_sketch("bench")
    snapshot_blob_bytes = len(
        pickle.dumps(sketch.snapshot(), protocol=pickle.HIGHEST_PROTOCOL)
    )
    shm_results: dict[str, dict] = {}
    for mode, flags in (
        ("pickle", {}),
        ("shm", {"shm_snapshots": True, "sticky_routing": True}),
    ):
        sketch.clear_cache()
        mode_config = ServeConfig(
            executor="process", executor_workers=args.workers,
            use_cache=False, max_batch_size=64, **flags,
        )
        with SketchServer(manager, mode_config) as server:
            t0 = time.perf_counter()
            responses = server.serve(list(stream))
            seconds = time.perf_counter() - t0
            values = [r.estimate for r in responses]
            executor = server.engine.executor
            if flags:
                pids = [
                    pid
                    for pool in executor._slot_pools
                    if pool is not None
                    for pid in pool._processes
                ]
                segments = sorted(live_segment_names())
                mapped = (
                    _workers_mapping_segment(pids, segments[0])
                    if segments else []
                )
                descriptor_bytes = sum(
                    len(pickle.dumps(seg_desc, protocol=pickle.HIGHEST_PROTOCOL))
                    for seg_desc in (
                        executor._segments[name].descriptor
                        for name in executor._segments
                    )
                )
            else:
                pids = list(executor._pool._processes)
                segments, mapped, descriptor_bytes = [], [], None
            rss = _worker_rss_kb(pids)
            fallbacks = server.stats.n_executor_fallbacks
        shm_results[mode] = {
            "seconds": seconds,
            "n_workers": len(pids),
            "worker_rss_kb": sorted(rss.values()),
            "segments_live_while_serving": segments,
            "workers_mapping_segment": mapped,
            "shipped_bytes_per_worker": (
                descriptor_bytes if descriptor_bytes is not None
                else snapshot_blob_bytes
            ),
            "fallbacks": fallbacks,
            "max_rel_diff": _max_rel_diff(values, reference),
            "exact": bool(
                np.array_equal(
                    np.asarray(values, dtype=np.float64),
                    np.asarray(reference, dtype=np.float64),
                )
            ),
        }
    leaked_after_close = sorted(live_segment_names())
    pickle_rss = shm_results["pickle"]["worker_rss_kb"]
    shm_rss = shm_results["shm"]["worker_rss_kb"]
    rss_delta_kb = (
        (sum(shm_rss) / max(len(shm_rss), 1))
        - (sum(pickle_rss) / max(len(pickle_rss), 1))
    )
    text_lines += [
        "",
        f"snapshot ship  : pickle {snapshot_blob_bytes} B/worker vs shm "
        f"{shm_results['shm']['shipped_bytes_per_worker']} B descriptor "
        f"(segment mapped by {sum(shm_results['shm']['workers_mapping_segment'])}"
        f"/{shm_results['shm']['n_workers']} workers)",
        f"worker RSS     : pickle mean "
        f"{sum(pickle_rss) / max(len(pickle_rss), 1):9.0f} kB, shm mean "
        f"{sum(shm_rss) / max(len(shm_rss), 1):9.0f} kB "
        f"(delta {rss_delta_kb:+.0f} kB)",
        f"shm parity     : exact={shm_results['shm']['exact']} "
        f"(max rel diff {shm_results['shm']['max_rel_diff']:.2e}), "
        f"segments after close: {leaked_after_close or 'none'}",
    ]
    text = "\n".join(text_lines)
    print(text)

    # ------------------------------------------------------------------
    # gates
    # ------------------------------------------------------------------
    gates = {
        "json_parity": transports["json"]["max_rel_diff"] <= PARITY_RTOL,
        "binary_parity": transports["binary"]["max_rel_diff"] <= PARITY_RTOL,
        "binary_negotiated": transports["binary"]["negotiated"] == "binary",
        # The keep-alive regression gate: sequential clients dial once
        # (or twice, allowing one idle-drop redial) — never per request.
        "json_keepalive": (
            transports["json"]["connections_opened"]["json"]
            <= MAX_CONNECTIONS_PER_CLIENT
        ),
        "binary_keepalive": (
            transports["binary"]["connections_opened"]["binary"]
            <= MAX_CONNECTIONS_PER_CLIENT
        ),
        # Zero per-worker snapshot copies: only the descriptor crosses
        # the boundary, and every worker maps the published segment.
        "shm_descriptor_small": (
            shm_results["shm"]["shipped_bytes_per_worker"]
            < snapshot_blob_bytes / 4
        ),
        "shm_segment_mapped_by_all_workers": (
            len(shm_results["shm"]["workers_mapping_segment"]) > 0
            and all(shm_results["shm"]["workers_mapping_segment"])
        ),
        "shm_exact_parity": shm_results["shm"]["exact"],
        "shm_no_fallbacks": shm_results["shm"]["fallbacks"] == 0,
        "shm_no_leaked_segments": leaked_after_close == [],
    }
    if not args.tiny:
        gates["binary_batch_overhead"] = (
            transports["binary"]["batch_overhead_us_per_request"]
            <= MAX_BINARY_BATCH_OVERHEAD_US
        )
    ok = all(gates.values())

    payload = {
        "inproc": {
            "n_singles": len(singles),
            "n_batch": len(stream),
            "single_seconds": inproc_single_s,
            "batch_seconds": inproc_batch_s,
        },
        "transports": transports,
        "shm": {
            "snapshot_pickle_bytes": snapshot_blob_bytes,
            "modes": shm_results,
            "worker_rss_delta_kb": rss_delta_kb,
            "leaked_segments_after_close": leaked_after_close,
        },
        "config": {
            "mode": "tiny" if args.tiny else "full",
            "scale": args.scale,
            "queries": args.queries,
            "epochs": args.epochs,
            "samples": args.samples,
            "hidden": args.hidden,
            "seed": args.seed,
            "distinct": args.distinct,
            "batch": args.batch,
            "singles": args.singles,
            "workers": args.workers,
            "cpu_count": os.cpu_count(),
            "parity_rtol": PARITY_RTOL,
            "max_binary_batch_overhead_us": MAX_BINARY_BATCH_OVERHEAD_US,
            "max_connections_per_client": MAX_CONNECTIONS_PER_CLIENT,
        },
        "gates": gates,
        "pass": ok,
    }

    results_dir = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "results"
    )
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "bench_transport.txt"), "w") as f:
        f.write(text.rstrip() + "\n")
    with open(os.path.join(results_dir, "BENCH_transport.json"), "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")

    for gate, passed in gates.items():
        if not passed:
            print(f"FAIL: gate {gate!r} failed", file=sys.stderr)
    if ok:
        print(
            "PASS: binary batched overhead "
            f"{transports['binary']['batch_overhead_us_per_request']:.1f}"
            "us/req (json "
            f"{transports['json']['batch_overhead_us_per_request']:.1f}"
            "us/req), "
            f"{transports['json']['connections_opened']['json']} json dial(s) "
            f"for {len(singles) + 1 + len(stream)} round trips, shm ships "
            f"{shm_results['shm']['shipped_bytes_per_worker']} B vs "
            f"{snapshot_blob_bytes} B pickled, 0 leaked segments",
            file=sys.stderr,
        )
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.2,
                        help="synthetic IMDb scale factor")
    parser.add_argument("--queries", type=int, default=3000,
                        help="training queries for the served sketch")
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--samples", type=int, default=300)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--distinct", type=int, default=24,
                        help="distinct JOB-light queries in the stream")
    parser.add_argument("--batch", type=int, default=512,
                        help="requests in the batched stream")
    parser.add_argument("--singles", type=int, default=96,
                        help="sequential single-request round trips")
    parser.add_argument("--workers", type=int, default=2,
                        help="process-pool workers for the shm section")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test configuration for CI (seconds)")
    args = parser.parse_args(argv)
    if args.tiny:
        apply_tiny_args(args)
        args.singles = 32
    return run(args)


if __name__ == "__main__":
    sys.exit(main())

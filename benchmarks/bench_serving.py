"""Serving throughput: single-query loop vs the batched SketchServer.

The paper claims sketches are "fast to query (within milliseconds)";
this harness quantifies how far batching pushes that.  It builds a
sketch over the synthetic IMDb, generates a JOB-light-style workload,
tiles it to a 512-request stream, and measures:

* the seed path — one ``estimate()`` call per request;
* the vectorized ``estimate_many`` fast path on the distinct queries;
* the full ``SketchServer`` (routing, micro-batching, LRU cache).

Estimates from all paths must agree (max relative difference below
1e-9; observed ~1e-15, i.e. BLAS kernel rounding), and the batched path
must be at least 5x faster than the single-query loop — both are
asserted in the full configuration, so this file doubles as an
acceptance gate.  ``--tiny`` asserts identity only: sub-millisecond
timings on shared CI runners are too noisy for a hard ratio.

Run from the repository root::

    python benchmarks/bench_serving.py           # full (a few minutes)
    python benchmarks/bench_serving.py --tiny    # CI smoke run (seconds)
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import SketchConfig  # noqa: E402
from repro.datasets import ImdbConfig, generate_imdb  # noqa: E402
from repro.demo import SketchManager  # noqa: E402
from repro.serve import run_serving_benchmark  # noqa: E402
from repro.serve.bench import apply_tiny_args  # noqa: E402
from repro.workload import (  # noqa: E402
    JobLightConfig,
    generate_job_light,
    spec_for_imdb,
)

#: Acceptance threshold: batched serving must beat the per-query loop
#: by at least this factor on the tiled workload.
MIN_SPEEDUP = 5.0


def run(args) -> int:
    db = generate_imdb(ImdbConfig(scale=args.scale, seed=7))
    manager = SketchManager(db)
    print(
        f"building sketch (scale={args.scale}, {args.queries} training "
        f"queries, {args.epochs} epochs, {args.samples} samples)...",
        file=sys.stderr,
    )
    manager.create_sketch(
        "bench",
        spec_for_imdb(),
        config=SketchConfig(
            sample_size=args.samples,
            n_training_queries=args.queries,
            epochs=args.epochs,
            hidden_units=args.hidden,
            seed=args.seed,
        ),
    )
    queries = generate_job_light(
        db, JobLightConfig(n_queries=args.distinct, seed=args.seed + 1)
    )
    result = run_serving_benchmark(
        manager, "bench", queries,
        batch_size=args.batch, max_batch_size=args.max_batch,
    )
    text = result.report()
    print(text)

    results_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "bench_serving.txt"), "w") as f:
        f.write(text.rstrip() + "\n")

    ok = True
    if not result.identical:
        print("FAIL: batched estimates diverge from the single-query path",
              file=sys.stderr)
        ok = False
    # Wall-clock gating only in the full configuration: the tiny smoke
    # run exists to check correctness on CI, where sub-millisecond
    # timings on shared runners are too noisy for a hard ratio.
    if not args.tiny and result.served_speedup < MIN_SPEEDUP:
        print(
            f"FAIL: served speedup {result.served_speedup:.1f}x is below "
            f"the {MIN_SPEEDUP:.0f}x acceptance threshold",
            file=sys.stderr,
        )
        ok = False
    if ok:
        print(
            f"PASS: {result.served_speedup:.1f}x served / "
            f"{result.vector_speedup:.1f}x vectorized, estimates identical",
            file=sys.stderr,
        )
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--queries", type=int, default=2000,
                        help="training queries for the benchmark sketch")
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--samples", type=int, default=500)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--distinct", type=int, default=70,
                        help="distinct JOB-light-style queries")
    parser.add_argument("--batch", type=int, default=512,
                        help="total serving requests (distinct tiled)")
    parser.add_argument("--max-batch", type=int, default=256,
                        help="micro-batch size per forward pass")
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test configuration for CI (seconds)")
    args = parser.parse_args(argv)
    if args.tiny:
        apply_tiny_args(args)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())

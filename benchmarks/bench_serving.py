"""Serving throughput: single-query loop vs batched vs async serving.

The paper claims sketches are "fast to query (within milliseconds)";
this harness quantifies how far batching pushes that.  It builds a
sketch over the synthetic IMDb, generates a JOB-light-style workload,
tiles it to a 512-request stream, and measures:

* the seed path — one ``estimate()`` call per request;
* the vectorized ``estimate_many`` fast path on the distinct queries;
* the full ``SketchServer`` (routing, micro-batching, LRU cache).

With ``--concurrent`` it additionally runs the asynchronous engine
(``AsyncSketchServer``) under concurrent client threads: throughput and
client-observed p50/p99 latency versus the synchronous server on the
same stream, plus a low-load phase demonstrating that p99 queueing wait
stays within 2x ``--max-wait-ms``.

Estimates from all paths must agree (max relative difference below
1e-9; observed ~1e-15, i.e. BLAS kernel rounding), and the batched path
must be at least 5x faster than the single-query loop — both are
asserted in the full configuration, so this file doubles as an
acceptance gate.  The concurrent gates (async throughput >= sync,
bounded p99 wait) are likewise asserted only in the full configuration.
``--tiny`` asserts identity only: sub-millisecond timings on shared CI
runners are too noisy for a hard ratio.

Run from the repository root::

    python benchmarks/bench_serving.py                # full (a few minutes)
    python benchmarks/bench_serving.py --concurrent   # adds the async scenario
    python benchmarks/bench_serving.py --tiny         # CI smoke run (seconds)
"""

from __future__ import annotations

import argparse
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import SketchConfig  # noqa: E402
from repro.datasets import ImdbConfig, generate_imdb  # noqa: E402
from repro.demo import SketchManager  # noqa: E402
from repro.serve import run_serving_benchmark  # noqa: E402
from repro.serve.bench import apply_tiny_args, run_concurrent_benchmark  # noqa: E402
from repro.workload import (  # noqa: E402
    JobLightConfig,
    generate_job_light,
    spec_for_imdb,
)

#: Acceptance threshold: batched serving must beat the per-query loop
#: by at least this factor on the tiled workload.
MIN_SPEEDUP = 5.0

#: Acceptance threshold for --concurrent: the async engine must sustain
#: at least the throughput the synchronous batched server delivers to
#: the same concurrent clients serving live traffic (mutex-serialized,
#: one request per flush — without the async engine, clients that hold
#: one request at a time have nothing to batch).  The chunk-owning
#: concurrent pattern and the single-caller whole-stream ideal are
#: reported alongside for scale.
MIN_CONCURRENT_RATIO = 1.0


def run(args) -> int:
    db = generate_imdb(ImdbConfig(scale=args.scale, seed=7))
    manager = SketchManager(db)
    print(
        f"building sketch (scale={args.scale}, {args.queries} training "
        f"queries, {args.epochs} epochs, {args.samples} samples)...",
        file=sys.stderr,
    )
    manager.create_sketch(
        "bench",
        spec_for_imdb(),
        config=SketchConfig(
            sample_size=args.samples,
            n_training_queries=args.queries,
            epochs=args.epochs,
            hidden_units=args.hidden,
            seed=args.seed,
        ),
    )
    queries = generate_job_light(
        db, JobLightConfig(n_queries=args.distinct, seed=args.seed + 1)
    )
    result = run_serving_benchmark(
        manager, "bench", queries,
        batch_size=args.batch, max_batch_size=args.max_batch,
    )
    text = result.report()

    concurrent = None
    if args.concurrent:
        print(
            f"running concurrent scenario ({args.clients} clients, "
            f"max_wait={args.max_wait_ms:g}ms)...",
            file=sys.stderr,
        )
        concurrent = run_concurrent_benchmark(
            manager, "bench", queries,
            batch_size=args.batch,
            n_clients=args.clients,
            max_batch_size=args.max_batch,
            max_wait_ms=args.max_wait_ms,
        )
        text += "\n\n--- concurrent clients (async engine) ---\n"
        text += concurrent.report()
    print(text)

    results_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "bench_serving.txt"), "w") as f:
        f.write(text.rstrip() + "\n")

    ok = True
    if result.n_errors:
        print(f"note: {result.n_errors}/{result.n_queries} served requests "
              "errored (isolated per request)", file=sys.stderr)
    if result.all_failed:
        print("FAIL: every served request errored", file=sys.stderr)
        ok = False
    if not result.identical:
        print("FAIL: batched estimates diverge from the single-query path",
              file=sys.stderr)
        ok = False
    # Wall-clock gating only in the full configuration: the tiny smoke
    # run exists to check correctness on CI, where sub-millisecond
    # timings on shared runners are too noisy for a hard ratio.
    if not args.tiny and result.served_speedup < MIN_SPEEDUP:
        print(
            f"FAIL: served speedup {result.served_speedup:.1f}x is below "
            f"the {MIN_SPEEDUP:.0f}x acceptance threshold",
            file=sys.stderr,
        )
        ok = False
    if concurrent is not None:
        if concurrent.all_failed:
            print("FAIL: every concurrent request errored", file=sys.stderr)
            ok = False
        if not concurrent.identical:
            print("FAIL: async estimates diverge from the single-query path",
                  file=sys.stderr)
            ok = False
        if not args.tiny:
            if concurrent.throughput_ratio < MIN_CONCURRENT_RATIO:
                print(
                    f"FAIL: async throughput is {concurrent.throughput_ratio:.2f}x "
                    f"the sync server on live concurrent traffic "
                    f"(need >= {MIN_CONCURRENT_RATIO:.2f}x)",
                    file=sys.stderr,
                )
                ok = False
            if not concurrent.p99_wait_bounded:
                print(
                    f"FAIL: low-load p99 wait "
                    f"{concurrent.low_load_p99_wait * 1000:.2f}ms exceeds "
                    f"2 x max_wait ({2 * args.max_wait_ms:.0f}ms)",
                    file=sys.stderr,
                )
                ok = False
    if ok:
        summary = (
            f"PASS: {result.served_speedup:.1f}x served / "
            f"{result.vector_speedup:.1f}x vectorized, estimates identical"
        )
        if concurrent is not None:
            summary += (
                f"; async {concurrent.throughput_ratio:.2f}x sync with "
                f"p99 wait {concurrent.low_load_p99_wait * 1000:.1f}ms"
            )
        print(summary, file=sys.stderr)
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--queries", type=int, default=2000,
                        help="training queries for the benchmark sketch")
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--samples", type=int, default=500)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--distinct", type=int, default=70,
                        help="distinct JOB-light-style queries")
    parser.add_argument("--batch", type=int, default=512,
                        help="total serving requests (distinct tiled)")
    parser.add_argument("--max-batch", type=int, default=256,
                        help="micro-batch size per forward pass")
    parser.add_argument("--concurrent", action="store_true",
                        help="also run the async engine under concurrent "
                        "client threads (throughput + p50/p99 latency)")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads for --concurrent")
    parser.add_argument("--max-wait-ms", type=float, default=10.0,
                        help="async flush deadline for --concurrent")
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test configuration for CI (seconds)")
    args = parser.parse_args(argv)
    if args.tiny:
        apply_tiny_args(args)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())

"""Serving throughput: single-query loop vs batched vs async vs executors.

The paper claims sketches are "fast to query (within milliseconds)";
this harness quantifies how far the serving engine pushes that.  It
builds a sketch over the synthetic IMDb, generates a JOB-light-style
workload, tiles it to a request stream, and measures:

* the seed path — one ``estimate()`` call per request;
* the vectorized ``estimate_many`` fast path on the distinct queries;
* the full engine through the ``SketchServer`` facade (routing,
  micro-batching, LRU cache) with ``--executor`` choosing where the
  micro-batches run;
* the **executor scale-out suite** — the same uncached stream through
  the inline, thread, and process executors (2 process workers by
  default: the CI smoke), with estimates cross-checked to 1e-12;
* the **overload scenario** — a burst far beyond ``max_queue_depth``,
  auditing that the queue stays bounded, the overflow is shed with
  structured ``code="shed"`` responses, and zero futures are abandoned;
* the **gateway scenario** — the ``SketchGateway`` over 1, 2, and 4
  live in-process backend front doors replicating one sketch (the
  scale-out curve, parity-gated at 1e-12), plus a kill-a-backend audit:
  one of two replicas dies mid-stream and the degradation must be
  structured — zero hung futures, failures only as ``route``/``shed``
  codes, survivors exact.

With ``--concurrent`` it additionally runs the async facade under
concurrent client threads (throughput + p50/p99 latency vs three sync
baselines, plus the low-load queueing bound).  With ``--http`` it
measures the **HTTP front door** (`repro.serve.http`) against the
in-process service on the same stream: per-request round-trip overhead
(p50/p99) and the one-envelope batch amortization, parity-gated at
1e-12 — the wire must not change numbers.

Estimates from all paths must agree (max relative difference below
1e-9 for batching, 1e-12 across executors; observed ~1e-15/0.0) — these
parity gates and the overload audit run in **every** configuration.
Wall-clock gates run only in the full configuration: batched serving
>= 5x the single-query loop, and — on a multi-core host — the process
executor >= 1.5x the single-threaded (inline) flush path.  ``--tiny``
keeps the correctness gates and skips the timing gates: sub-millisecond
timings on shared CI runners are too noisy for hard ratios.

Every run writes machine-readable results to
``benchmarks/results/BENCH_serving.json`` (same shape philosophy as
``BENCH_inference.json``: sections + config + gates + pass), plus the
human-readable ``bench_serving.txt``.

Run from the repository root::

    python benchmarks/bench_serving.py                    # full (minutes)
    python benchmarks/bench_serving.py --executor process # engine pass on 2 cores
    python benchmarks/bench_serving.py --concurrent       # adds the async scenario
    python benchmarks/bench_serving.py --tiny             # CI smoke run (seconds)
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

from repro.core import SketchConfig  # noqa: E402
from repro.datasets import ImdbConfig, generate_imdb  # noqa: E402
from repro.demo import SketchManager  # noqa: E402
from repro.serve import run_serving_benchmark  # noqa: E402
from repro.serve.bench import (  # noqa: E402
    EXECUTOR_PARITY_RTOL,
    apply_tiny_args,
    run_concurrent_benchmark,
    run_executor_benchmark,
    run_gateway_benchmark,
    run_http_benchmark,
    run_overload_benchmark,
)
from repro.workload import (  # noqa: E402
    JobLightConfig,
    generate_job_light,
    spec_for_imdb,
)

#: Acceptance threshold: batched serving must beat the per-query loop
#: by at least this factor on the tiled workload.
MIN_SPEEDUP = 5.0

#: Acceptance threshold for --concurrent: the async engine must sustain
#: at least the throughput the synchronous batched server delivers to
#: the same concurrent clients serving live traffic (mutex-serialized,
#: one request per flush — without the async engine, clients that hold
#: one request at a time have nothing to batch).
MIN_CONCURRENT_RATIO = 1.0

#: Acceptance threshold for the process executor vs the single-threaded
#: (inline) flush path, gated only on multi-core hosts in the full
#: configuration — a 1-core container cannot overlap anything.
MIN_PROCESS_SPEEDUP = 1.5


def run(args) -> int:
    db = generate_imdb(ImdbConfig(scale=args.scale, seed=7))
    manager = SketchManager(db)
    print(
        f"building sketch (scale={args.scale}, {args.queries} training "
        f"queries, {args.epochs} epochs, {args.samples} samples)...",
        file=sys.stderr,
    )
    manager.create_sketch(
        "bench",
        spec_for_imdb(),
        config=SketchConfig(
            sample_size=args.samples,
            n_training_queries=args.queries,
            epochs=args.epochs,
            hidden_units=args.hidden,
            seed=args.seed,
        ),
    )
    queries = generate_job_light(
        db, JobLightConfig(n_queries=args.distinct, seed=args.seed + 1)
    )
    result = run_serving_benchmark(
        manager, "bench", queries,
        batch_size=args.batch, max_batch_size=args.max_batch,
        executor=args.executor, executor_workers=args.workers,
    )
    text = result.report()

    print(
        f"running executor scale-out suite (workers={args.workers})...",
        file=sys.stderr,
    )
    # Micro-batches sized so the stream splits into at least ~2 chunks
    # per worker — the units a thread/process executor overlaps.
    suite_max_batch = max(8, min(args.max_batch, args.batch // (2 * args.workers)))
    executor_suite = run_executor_benchmark(
        manager, "bench", queries,
        batch_size=args.batch,
        max_batch_size=suite_max_batch,
        workers=args.workers,
    )
    text += "\n\n" + executor_suite.report()

    overload = run_overload_benchmark(
        manager, "bench", queries,
        burst_size=args.batch,
        max_queue_depth=max(8, args.batch // 8),
    )
    text += "\n" + overload.report()

    # The gateway scenario runs in every configuration (tiny included):
    # the scale-out curve and the kill audit are acceptance artifacts
    # recorded in BENCH_serving.json, not optional timing extras.
    print(
        "running gateway scale-out scenario (1 -> 4 backends + kill "
        "audit)...",
        file=sys.stderr,
    )
    gateway = run_gateway_benchmark(
        manager, "bench", queries,
        batch_size=min(args.batch, 256),
        max_batch_size=suite_max_batch,
        backend_counts=(1, 2, 4),
    )
    text += "\n" + gateway.report()

    http = None
    if args.http:
        print("running http front-door scenario...", file=sys.stderr)
        http = run_http_benchmark(
            manager, "bench", queries,
            batch_size=min(args.batch, 256),
            max_batch_size=suite_max_batch,
        )
        text += "\n" + http.report()

    concurrent = None
    if args.concurrent:
        print(
            f"running concurrent scenario ({args.clients} clients, "
            f"max_wait={args.max_wait_ms:g}ms)...",
            file=sys.stderr,
        )
        concurrent = run_concurrent_benchmark(
            manager, "bench", queries,
            batch_size=args.batch,
            n_clients=args.clients,
            max_batch_size=args.max_batch,
            max_wait_ms=args.max_wait_ms,
        )
        text += "\n\n--- concurrent clients (async engine) ---\n"
        text += concurrent.report()
    print(text)

    # ------------------------------------------------------------------
    # gates
    # ------------------------------------------------------------------
    multi_core = (os.cpu_count() or 1) >= 2
    process_result = executor_suite.result_for("process")
    process_clean = (
        process_result is not None and process_result.n_fallbacks == 0
    )
    gates = {
        "served_any": not result.all_failed,
        "serving_parity": result.identical,
        "executor_parity": executor_suite.parity_ok,
        "process_pool_ran": process_clean,
        "overload_bounded_shed": overload.ok,
        # The fleet must not change numbers, the kill must hang nothing,
        # and failures must stay inside the structured route/shed codes.
        "gateway_parity": gateway.parity_ok,
        "gateway_kill_no_hangs": gateway.kill_n_unresolved == 0,
        "gateway_kill_structured_codes": (
            gateway.kill_n_unstructured == 0 and gateway.kill_n_ok > 0
        ),
    }
    if not args.tiny:
        if args.executor == "inline":
            # The 5x bar was calibrated for the inline engine pass; a
            # thread/process pass pays hand-off overhead that the
            # executor suite below gates on its own terms (warmed,
            # relative to inline, multi-core only).
            gates["served_speedup"] = result.served_speedup >= MIN_SPEEDUP
        if multi_core:
            gates["process_speedup"] = (
                executor_suite.speedup("process") >= MIN_PROCESS_SPEEDUP
            )
    if http is not None:
        # Parity is the acceptance contract: the wire must not change
        # numbers (≤ 1e-12 relative vs the in-process facade).  Timing
        # is recorded but not gated — localhost round trips on shared
        # CI runners are too noisy for hard ratios.
        gates["http_parity"] = http.parity_ok
        gates["http_served_all"] = http.n_errors == 0
    if concurrent is not None:
        gates["concurrent_any"] = not concurrent.all_failed
        gates["concurrent_parity"] = concurrent.identical
        if not args.tiny:
            gates["concurrent_throughput"] = (
                concurrent.throughput_ratio >= MIN_CONCURRENT_RATIO
            )
            gates["p99_wait_bounded"] = concurrent.p99_wait_bounded
    ok = all(gates.values())

    # ------------------------------------------------------------------
    # machine-readable results (BENCH_serving.json)
    # ------------------------------------------------------------------
    payload = {
        "serving": {
            "n_queries": result.n_queries,
            "n_distinct": result.n_distinct,
            "executor": args.executor,
            "single_seconds": result.single_seconds,
            "vector_seconds": result.vector_seconds,
            "served_seconds": result.served_seconds,
            "single_qps": result.single_qps,
            "served_qps": result.served_qps,
            "served_speedup": result.served_speedup,
            "vector_speedup": result.vector_speedup,
            "max_rel_diff_vector": result.max_rel_diff_vector,
            "max_rel_diff_served": result.max_rel_diff_served,
            "n_errors": result.n_errors,
        },
        "executors": {
            r.executor: {
                "workers": r.workers,
                "seconds": r.seconds,
                "qps": r.qps,
                "speedup_vs_inline": executor_suite.speedup(r.executor),
                "forward_batches": r.n_forward_batches,
                "fallbacks": r.n_fallbacks,
                "max_rel_diff_vs_inline": r.max_rel_diff,
            }
            for r in executor_suite.results
        },
        "gateway": {
            "n_requests": gateway.n_requests,
            "n_clients": gateway.n_clients,
            "scaleout": {
                str(point.n_backends): {
                    "seconds": point.seconds,
                    "qps": point.qps,
                    "speedup_vs_one_backend": gateway.speedup(
                        point.n_backends
                    ),
                    "max_rel_diff": point.max_rel_diff,
                    "n_errors": point.n_errors,
                }
                for point in gateway.scaleout
            },
            "kill": {
                "n_requests": gateway.kill_n_requests,
                "n_ok": gateway.kill_n_ok,
                "n_structured_route_shed": gateway.kill_n_structured,
                "n_unstructured": gateway.kill_n_unstructured,
                "n_hung_futures": gateway.kill_n_unresolved,
                "n_failovers": gateway.kill_n_failovers,
                "survivor_max_rel_diff": gateway.kill_max_rel_diff,
            },
        },
        "overload": {
            "n_requests": overload.n_requests,
            "max_queue_depth": overload.max_queue_depth,
            "n_served": overload.n_served,
            "n_shed": overload.n_shed,
            "n_unresolved_futures": overload.n_unresolved,
            "max_depth_seen": overload.max_depth_seen,
            "bounded": overload.bounded,
        },
        "config": {
            "mode": "tiny" if args.tiny else "full",
            "scale": args.scale,
            "queries": args.queries,
            "epochs": args.epochs,
            "samples": args.samples,
            "hidden": args.hidden,
            "seed": args.seed,
            "distinct": args.distinct,
            "batch": args.batch,
            "max_batch": args.max_batch,
            "executor": args.executor,
            "workers": args.workers,
            "cpu_count": os.cpu_count(),
            "executor_parity_rtol": EXECUTOR_PARITY_RTOL,
        },
        "gates": gates,
        "pass": ok,
    }
    if http is not None:
        import math

        # batch_amortization is inf when timing noise makes the batched
        # HTTP pass no slower than in-process; JSON has no Infinity, so
        # record null rather than emit a file strict parsers reject.
        amortization = http.batch_amortization
        payload["http"] = {
            "n_requests": http.n_requests,
            "inproc_request_seconds": http.inproc_request_seconds,
            "inproc_request_p50_s": http.inproc_request_p50,
            "inproc_request_p99_s": http.inproc_request_p99,
            "inproc_batch_seconds": http.inproc_batch_seconds,
            "http_request_seconds": http.http_request_seconds,
            "http_request_p50_s": http.http_request_p50,
            "http_request_p99_s": http.http_request_p99,
            "http_batch_seconds": http.http_batch_seconds,
            "overhead_p50_ms": http.overhead_p50_ms,
            "overhead_p99_ms": http.overhead_p99_ms,
            "batch_overhead_per_request_ms": http.batch_overhead_per_request_ms,
            "batch_amortization": (
                amortization if math.isfinite(amortization) else None
            ),
            "server_reported_p50_s": http.server_reported_p50,
            "max_rel_diff": http.max_rel_diff,
            "n_errors": http.n_errors,
        }
    if concurrent is not None:
        payload["concurrent"] = {
            "n_clients": concurrent.n_clients,
            "async_seconds": concurrent.async_seconds,
            "async_qps": concurrent.async_qps,
            "throughput_ratio_vs_live_sync": concurrent.throughput_ratio,
            "chunked_ratio": concurrent.chunked_ratio,
            "single_caller_ratio": concurrent.single_caller_ratio,
            "p50_latency_s": concurrent.p50_latency,
            "p99_latency_s": concurrent.p99_latency,
            "low_load_p99_wait_s": concurrent.low_load_p99_wait,
            "max_rel_diff": concurrent.max_rel_diff,
            "n_deduped": concurrent.n_deduped,
            "n_errors": concurrent.n_errors,
        }

    results_dir = os.path.join(os.path.dirname(os.path.abspath(__file__)), "results")
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "bench_serving.txt"), "w") as f:
        f.write(text.rstrip() + "\n")
    with open(os.path.join(results_dir, "BENCH_serving.json"), "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")

    # ------------------------------------------------------------------
    # verdicts
    # ------------------------------------------------------------------
    if result.n_errors:
        print(f"note: {result.n_errors}/{result.n_queries} served requests "
              "errored (isolated per request)", file=sys.stderr)
    for gate, passed in gates.items():
        if not passed:
            print(f"FAIL: gate {gate!r} failed", file=sys.stderr)
    if not multi_core:
        print(
            "note: single-core host — the process-executor speedup gate "
            "is informational only here (measured "
            f"{executor_suite.speedup('process'):.2f}x inline)",
            file=sys.stderr,
        )
    if ok:
        summary = (
            f"PASS: {result.served_speedup:.1f}x served / "
            f"{result.vector_speedup:.1f}x vectorized, "
            f"process executor {executor_suite.speedup('process'):.2f}x inline "
            f"({args.workers} workers, {os.cpu_count()} cores), "
            f"overload shed {overload.n_shed}/{overload.n_requests} bounded, "
            f"gateway {gateway.speedup(4):.2f}x at 4 backends with "
            f"{gateway.kill_n_unresolved} hung futures on kill, "
            "estimates identical"
        )
        if http is not None:
            summary += (
                f"; http overhead p50 {http.overhead_p50_ms:+.2f}ms/request "
                f"({http.batch_amortization:.1f}x amortized when batched)"
            )
        if concurrent is not None:
            summary += (
                f"; async {concurrent.throughput_ratio:.2f}x sync with "
                f"p99 wait {concurrent.low_load_p99_wait * 1000:.1f}ms"
            )
        print(summary, file=sys.stderr)
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.3)
    parser.add_argument("--queries", type=int, default=2000,
                        help="training queries for the benchmark sketch")
    parser.add_argument("--epochs", type=int, default=4)
    parser.add_argument("--samples", type=int, default=500)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--distinct", type=int, default=70,
                        help="distinct JOB-light-style queries")
    parser.add_argument("--batch", type=int, default=512,
                        help="total serving requests (distinct tiled)")
    parser.add_argument("--max-batch", type=int, default=256,
                        help="micro-batch size per forward pass")
    parser.add_argument("--executor", choices=("inline", "thread", "process"),
                        default="inline",
                        help="executor for the main serving-engine pass "
                        "(the scale-out suite always runs all three)")
    parser.add_argument("--workers", type=int, default=2,
                        help="thread/process executor workers")
    parser.add_argument("--http", action="store_true",
                        help="also measure the HTTP front door: round-trip "
                        "overhead vs in-process submit (p50/p99, batched "
                        "vs per-request), parity-gated at 1e-12")
    parser.add_argument("--concurrent", action="store_true",
                        help="also run the async engine under concurrent "
                        "client threads (throughput + p50/p99 latency)")
    parser.add_argument("--clients", type=int, default=8,
                        help="concurrent client threads for --concurrent")
    parser.add_argument("--max-wait-ms", type=float, default=10.0,
                        help="async flush deadline for --concurrent")
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test configuration for CI (seconds)")
    args = parser.parse_args(argv)
    if args.workers <= 0:
        parser.error(f"--workers must be positive, got {args.workers}")
    if args.tiny:
        apply_tiny_args(args)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())

"""Figure 1b — the sketch interface: SQL in, estimate out.

Paper claims quantified here:

* "Deep Sketches feature a small footprint size (a few MiBs)" — we
  serialize the Table-1 sketch (model + 1000-row samples for six
  tables) and record the byte size;
* "and are fast to query (within milliseconds)" — we time single-query
  estimation end to end (SQL parsing, bitmap computation, featurization,
  network forward pass, denormalization);
* the sketch answers from its payload alone (deployable "in a web
  browser or within a cell phone"): estimation after a
  serialize/deserialize round-trip must match exactly.
"""

from __future__ import annotations

import numpy as np

from repro.core import DeepSketch

from conftest import write_result

_SQL = (
    "SELECT COUNT(*) FROM title t, movie_keyword mk, movie_info mi "
    "WHERE mk.movie_id=t.id AND mi.movie_id=t.id "
    "AND t.production_year>2005 AND mi.info_type_id=5;"
)


def test_fig1b_footprint(benchmark, table1_sketch):
    sketch, _ = table1_sketch
    blob = benchmark.pedantic(sketch.to_bytes, rounds=3, iterations=1)
    size_mib = len(blob) / (1024 * 1024)
    n_params = sketch.model.num_parameters()
    text = (
        "Figure 1b footprint:\n"
        f"  serialized sketch: {len(blob)} bytes ({size_mib:.2f} MiB)\n"
        f"  model parameters : {n_params}\n"
        f"  samples          : {sketch.samples.total_rows()} rows over "
        f"{len(sketch.samples.table_names)} tables"
    )
    print("\n" + text)
    write_result("fig1b_footprint", text)
    benchmark.extra_info["bytes"] = len(blob)
    benchmark.extra_info["mib"] = round(size_mib, 3)
    # "a few MiBs": comfortably under 8 MiB even with generous slack.
    assert size_mib < 8.0


def test_fig1b_estimation_latency_sql(benchmark, table1_sketch):
    """Single ad-hoc SQL query: parse + bitmaps + featurize + forward."""
    sketch, _ = table1_sketch
    estimate = benchmark(lambda: sketch.estimate(_SQL))
    assert estimate >= 1.0
    # "within milliseconds": generous bound for a pure-python stack.
    assert benchmark.stats["mean"] < 0.05, "estimation took tens of ms"


def test_fig1b_estimation_latency_batched(benchmark, table1_sketch, joblight_workload):
    """Amortized per-query cost when batching the whole workload."""
    sketch, _ = table1_sketch
    queries, _ = joblight_workload
    values = benchmark(lambda: sketch.estimate_many(queries))
    assert len(values) == len(queries)
    per_query_ms = benchmark.stats["mean"] / len(queries) * 1000
    benchmark.extra_info["per_query_ms"] = round(per_query_ms, 3)


def test_fig1b_roundtrip_consistency(benchmark, table1_sketch):
    """Deserialized sketches answer identically — the deployment story."""
    sketch, _ = table1_sketch
    blob = sketch.to_bytes()

    clone = benchmark.pedantic(DeepSketch.from_bytes, args=(blob,), rounds=3, iterations=1)
    original = sketch.estimate(_SQL)
    restored = clone.estimate(_SQL)
    assert np.isclose(original, restored)
    text = (
        "Figure 1b round-trip:\n"
        f"  estimate before serialization: {original:.1f}\n"
        f"  estimate after  deserialization: {restored:.1f}"
    )
    print("\n" + text)
    write_result("fig1b_roundtrip", text)

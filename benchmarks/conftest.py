"""Shared fixtures for the benchmark harness.

The expensive artifacts — the full-scale synthetic IMDb, a Table-1
quality Deep Sketch, the JOB-light workload, and the baseline
estimators — are built once per benchmark session and shared by every
harness.  Each harness also appends its headline numbers to
``benchmarks/results/`` so EXPERIMENTS.md can be assembled from one run.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.baselines import (
    HyperEstimator,
    PostgresEstimator,
    SamplingEstimator,
    TruthEstimator,
)
from repro.core import SketchConfig, build_sketch
from repro.datasets import ImdbConfig, generate_imdb
from repro.db import execute_count
from repro.workload import JobLightConfig, generate_job_light, spec_for_imdb

#: Paper-faithful parameters, scaled to the synthetic database: the demo
#: recommends ~10k queries for a small number of tables and notes 25
#: epochs usually suffice; we use more queries because labels are cheap
#: on the in-memory engine.
TABLE1_CONFIG = SketchConfig(
    n_training_queries=20_000,
    epochs=20,
    sample_size=1000,
    hidden_units=64,
    seed=0,
)

RESULTS_DIR = os.path.join(os.path.dirname(__file__), "results")


def write_result(name: str, text: str) -> None:
    """Persist a harness' headline output for EXPERIMENTS.md."""
    os.makedirs(RESULTS_DIR, exist_ok=True)
    with open(os.path.join(RESULTS_DIR, f"{name}.txt"), "w") as f:
        f.write(text.rstrip() + "\n")


@pytest.fixture(scope="session")
def imdb_full():
    """The full-scale synthetic IMDb (~20k titles, ~300k rows)."""
    return generate_imdb(ImdbConfig(scale=1.0, seed=7))


@pytest.fixture(scope="session")
def table1_sketch(imdb_full):
    """The Deep Sketch used by the Table 1 / Figure 1b / Figure 2 benches."""
    sketch, report = build_sketch(
        imdb_full, spec_for_imdb(), name="imdb-joblight", config=TABLE1_CONFIG
    )
    return sketch, report


@pytest.fixture(scope="session")
def joblight_workload(imdb_full):
    """70 JOB-light-style queries with their true cardinalities."""
    queries = generate_job_light(imdb_full, JobLightConfig(n_queries=70, seed=42))
    truths = np.array([float(max(execute_count(imdb_full, q), 1)) for q in queries])
    return queries, truths


@pytest.fixture(scope="session")
def baseline_estimators(imdb_full):
    """The paper's comparison systems plus the pure-sampling ablation."""
    return {
        "HyPer": HyperEstimator(imdb_full, sample_size=1000, seed=1),
        "PostgreSQL": PostgresEstimator(imdb_full),
        "Sampling": SamplingEstimator(imdb_full, sample_size=1000, seed=1),
    }


@pytest.fixture(scope="session")
def truth_oracle(imdb_full):
    return TruthEstimator(imdb_full)

"""Plan quality — the paper's Section 1 motivation, quantified end to end.

"Estimates of intermediate query result sizes are the core ingredient to
cost-based query optimizers ... The estimates produced by Deep Sketches
can directly be leveraged by existing, sophisticated join enumeration
algorithms and cost models."

Three sections:

* **plan quality by estimator** — each estimator feeds the DP join
  enumerator under the C_out cost model (the standard JOB methodology);
  every chosen plan is scored by its cost under *true* cardinalities
  relative to the true-optimal plan.  A factor of 1.0 means the
  estimator's errors did not change the plan.  The truth oracle is
  gated at exactly 1.0 and the Deep Sketch must not trail the weaker
  traditional baseline by more than 5% on average (full mode).
* **enumeration ablation** — DP vs greedy under perfect estimates:
  DP is optimal by construction; greedy pays a measurable premium.
* **plan advisory serving** — the same queries through ``POST
  /v1/plan`` on a live front door.  Gates: the served plan is
  *identical* (same join-order string) to the in-process
  :class:`~repro.optimizer.PlanOptimizer` plan for every query, the
  estimated costs agree to 1e-12, and the front door advertises the
  capability in ``/v1/healthz``.  The estimate-vs-enumerate timing
  split quantifies what plan advice costs beyond plain estimation.

Every run writes machine-readable results to
``benchmarks/results/BENCH_plan_quality.json`` (sections + config +
gates + pass) plus the human-readable ``bench_plan_quality.txt``.

Run from the repository root::

    python benchmarks/bench_plan_quality.py          # full (minutes)
    python benchmarks/bench_plan_quality.py --tiny   # CI smoke run (seconds)
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np  # noqa: E402

from repro.baselines import (  # noqa: E402
    HyperEstimator,
    PostgresEstimator,
    TruthEstimator,
)
from repro.core import SketchConfig  # noqa: E402
from repro.datasets import ImdbConfig, generate_imdb  # noqa: E402
from repro.demo import SketchManager  # noqa: E402
from repro.optimizer import PlanOptimizer  # noqa: E402
from repro.serve import RemoteSketchServer, SketchHTTPServer  # noqa: E402
from repro.serve.bench import apply_tiny_args  # noqa: E402
from repro.workload import (  # noqa: E402
    JobLightConfig,
    generate_job_light,
    spec_for_imdb,
)

#: Cost-parity bound between the served plan and the in-process plan.
PARITY_RTOL = 1e-12

#: Full-mode gate: the sketch's mean plan-cost factor must not trail the
#: weaker traditional baseline by more than this ratio.
SKETCH_VS_BASELINE_SLACK = 1.05


def _factor_stats(values: np.ndarray) -> dict:
    return {
        "mean": float(values.mean()),
        "p90": float(np.percentile(values, 90)),
        "max": float(values.max()),
        "pct_optimal": float((values < 1.001).mean() * 100),
    }


def run(args) -> int:
    db = generate_imdb(ImdbConfig(scale=args.scale, seed=7))
    manager = SketchManager(db)
    print(
        f"building sketch (scale={args.scale}, {args.queries} training "
        f"queries, {args.epochs} epochs)...",
        file=sys.stderr,
    )
    manager.create_sketch(
        "bench",
        spec_for_imdb(),
        config=SketchConfig(
            sample_size=args.samples,
            n_training_queries=args.queries,
            epochs=args.epochs,
            hidden_units=args.hidden,
            seed=args.seed,
        ),
    )
    sketch = manager.get_sketch("bench")
    queries = [
        q
        for q in generate_job_light(
            db, JobLightConfig(n_queries=args.plan_queries, seed=42)
        )
        if q.num_joins >= 2  # join order only matters with >= 3 relations
    ]
    truth = TruthEstimator(db)
    text_lines: list[str] = []

    # ------------------------------------------------------------------
    # plan quality by estimator
    # ------------------------------------------------------------------
    systems = {
        "Truth": truth,
        "Deep Sketch": sketch,
        "HyPer": HyperEstimator(db, sample_size=args.samples, seed=1),
        "PostgreSQL": PostgresEstimator(db),
    }
    quality: dict[str, dict] = {}
    factor_floor = True
    text_lines += [
        f"Plan quality over {len(queries)} JOB-light queries "
        "(true C_out of chosen plan / true C_out of optimal plan):",
        f"  {'system':<14} {'mean':>8} {'p90':>8} {'max':>8} {'% optimal':>10}",
    ]
    for name, estimator in systems.items():
        print(f"planning with {name}...", file=sys.stderr)
        optimizer = PlanOptimizer(db, estimator)
        values = np.array([optimizer.plan_quality_factor(q) for q in queries])
        factor_floor = factor_floor and bool((values >= 1.0 - 1e-9).all())
        quality[name] = _factor_stats(values)
        s = quality[name]
        text_lines.append(
            f"  {name:<14} {s['mean']:8.3f} {s['p90']:8.3f} "
            f"{s['max']:8.2f} {s['pct_optimal']:9.0f}%"
        )

    # ------------------------------------------------------------------
    # enumeration ablation: DP vs greedy under perfect estimates
    # ------------------------------------------------------------------
    print("enumeration ablation (dp vs greedy)...", file=sys.stderr)
    dp = PlanOptimizer(db, truth, strategy="dp")
    greedy = PlanOptimizer(db, truth, strategy="greedy")
    ratios = []
    for query in queries:
        dp_cost = dp.true_cost_of(dp.optimize(query))
        greedy_cost = greedy.true_cost_of(greedy.optimize(query))
        ratios.append(greedy_cost / max(dp_cost, 1.0))
    ratios = np.array(ratios)
    enumeration = {
        "n_queries": len(queries),
        "mean_ratio": float(ratios.mean()),
        "p90_ratio": float(np.percentile(ratios, 90)),
        "max_ratio": float(ratios.max()),
    }
    text_lines += [
        "",
        "Enumeration ablation (greedy true cost / DP true cost, truth "
        f"estimates, n={len(queries)}):",
        f"  mean {enumeration['mean_ratio']:.3f}   "
        f"p90 {enumeration['p90_ratio']:.3f}   "
        f"max {enumeration['max_ratio']:.3f}",
    ]

    # ------------------------------------------------------------------
    # plan advisory serving: POST /v1/plan vs in-process PlanOptimizer
    # ------------------------------------------------------------------
    print("measuring the plan advisory serve path...", file=sys.stderr)
    reference = PlanOptimizer(db, sketch)
    in_process = {q: reference.optimize(q) for q in queries}
    identical = 0
    cost_diffs: list[float] = []
    plan_ms: list[float] = []
    estimate_ms: list[float] = []
    enumerate_ms: list[float] = []
    with SketchHTTPServer(manager, port=0) as server:
        with RemoteSketchServer(server.url) as client:
            advertised = bool(client.healthz().get("plan"))
            negotiated = client.negotiate_transport()
            for query in queries:
                t0 = time.perf_counter()
                response = client.plan(query)
                plan_ms.append((time.perf_counter() - t0) * 1000.0)
                local = in_process[query]
                if not response.ok:
                    continue
                if str(response.plan) == str(local.plan):
                    identical += 1
                scale = max(abs(local.estimated_cost), 1e-300)
                cost_diffs.append(
                    abs(response.estimated_cost - local.estimated_cost) / scale
                )
                if response.estimate_ms is not None:
                    estimate_ms.append(response.estimate_ms)
                if response.enumerate_ms is not None:
                    enumerate_ms.append(response.enumerate_ms)
    serving = {
        "n_queries": len(queries),
        "transport": negotiated,
        "plan_advertised": advertised,
        "identical_plans": identical,
        "max_cost_rel_diff": float(max(cost_diffs)) if cost_diffs else None,
        "mean_plan_ms": float(np.mean(plan_ms)),
        "mean_estimate_ms": float(np.mean(estimate_ms)),
        "mean_enumerate_ms": float(np.mean(enumerate_ms)),
    }
    text_lines += [
        "",
        f"Plan advisory serving ({negotiated} transport, "
        f"{len(queries)} queries):",
        f"  identical plans {identical}/{len(queries)}, max cost rel diff "
        f"{serving['max_cost_rel_diff']:.2e}" if cost_diffs else
        f"  identical plans {identical}/{len(queries)}, no costs compared",
        f"  mean round trip {serving['mean_plan_ms']:7.2f} ms "
        f"(estimate {serving['mean_estimate_ms']:.2f} ms + enumerate+DP "
        f"{serving['mean_enumerate_ms']:.2f} ms server-side)",
    ]
    text = "\n".join(text_lines)
    print(text)

    # ------------------------------------------------------------------
    # gates
    # ------------------------------------------------------------------
    gates = {
        # A plan can never beat the true optimum.
        "factors_at_least_one": factor_floor,
        # Perfect estimates make the DP exactly optimal.
        "truth_is_optimal": quality["Truth"]["mean"] <= 1.0 + 1e-9,
        "greedy_never_beats_dp": bool((ratios >= 1.0 - 1e-9).all()),
        # The serve path is advice about the SAME plan the in-process
        # optimizer would choose — identical join order, equal cost.
        "serve_plans_identical": identical == len(queries),
        "serve_cost_parity": (
            len(cost_diffs) == len(queries)
            and max(cost_diffs) <= PARITY_RTOL
        ),
        "plan_capability_advertised": advertised,
    }
    if not args.tiny:
        # The tiny sketch is deliberately under-trained; only the full
        # configuration holds it to the baseline bar.
        worst_baseline = max(
            quality["HyPer"]["mean"], quality["PostgreSQL"]["mean"]
        )
        gates["sketch_not_worse_than_baselines"] = (
            quality["Deep Sketch"]["mean"]
            <= worst_baseline * SKETCH_VS_BASELINE_SLACK
        )
    ok = all(gates.values())

    payload = {
        "plan_quality": quality,
        "enumeration": enumeration,
        "serving": serving,
        "config": {
            "mode": "tiny" if args.tiny else "full",
            "scale": args.scale,
            "queries": args.queries,
            "epochs": args.epochs,
            "samples": args.samples,
            "hidden": args.hidden,
            "seed": args.seed,
            "plan_queries": args.plan_queries,
            "n_planned": len(queries),
            "parity_rtol": PARITY_RTOL,
            "sketch_vs_baseline_slack": SKETCH_VS_BASELINE_SLACK,
        },
        "gates": gates,
        "pass": ok,
    }

    results_dir = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "results"
    )
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "bench_plan_quality.txt"), "w") as f:
        f.write(text.rstrip() + "\n")
    with open(os.path.join(results_dir, "BENCH_plan_quality.json"), "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")

    for gate, passed in gates.items():
        if not passed:
            print(f"FAIL: gate {gate!r} failed", file=sys.stderr)
    if ok:
        print(
            f"PASS: {identical}/{len(queries)} served plans identical to "
            "in-process plans, sketch mean plan-cost factor "
            f"{quality['Deep Sketch']['mean']:.3f} "
            f"(truth {quality['Truth']['mean']:.3f}), plan round trip "
            f"{serving['mean_plan_ms']:.1f} ms mean",
            file=sys.stderr,
        )
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=1.0,
                        help="synthetic IMDb scale factor")
    parser.add_argument("--queries", type=int, default=20_000,
                        help="training queries for the benched sketch")
    parser.add_argument("--epochs", type=int, default=20)
    parser.add_argument("--samples", type=int, default=1000)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--plan-queries", type=int, default=70,
                        help="JOB-light queries drawn (>=2-join ones kept)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test configuration for CI (seconds)")
    args = parser.parse_args(argv)
    if args.tiny:
        apply_tiny_args(args)
        args.plan_queries = 24
    return run(args)


if __name__ == "__main__":
    sys.exit(main())

"""Plan quality — the paper's Section 1 motivation, quantified.

"Estimates of intermediate query result sizes are the core ingredient to
cost-based query optimizers ... The estimates produced by Deep Sketches
can directly be leveraged by existing, sophisticated join enumeration
algorithms and cost models."

This extension experiment feeds each estimator into the DP join
enumerator under the C_out cost model (the standard JOB methodology) and
scores every chosen plan by its cost under *true* cardinalities,
relative to the true-optimal plan.  A factor of 1.0 means the
estimator's errors did not change the plan.
"""

from __future__ import annotations

import numpy as np

from repro.optimizer import PlanOptimizer
from repro.workload import JobLightConfig, generate_job_light

from conftest import write_result


def test_plan_quality_by_estimator(
    benchmark, imdb_full, table1_sketch, baseline_estimators
):
    sketch, _ = table1_sketch
    queries = [
        q
        for q in generate_job_light(imdb_full, JobLightConfig(n_queries=70, seed=42))
        if q.num_joins >= 2  # join order only matters with >= 3 relations
    ]

    systems = {
        "Deep Sketch": sketch,
        "HyPer": baseline_estimators["HyPer"],
        "PostgreSQL": baseline_estimators["PostgreSQL"],
    }

    def run():
        factors = {}
        for name, estimator in systems.items():
            optimizer = PlanOptimizer(imdb_full, estimator)
            factors[name] = np.array(
                [optimizer.plan_quality_factor(q) for q in queries]
            )
        return factors

    factors = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [
        f"Plan quality over {len(queries)} JOB-light queries "
        "(true C_out of chosen plan / true C_out of optimal plan):",
        f"  {'system':<14} {'mean':>8} {'p90':>8} {'max':>8} {'% optimal':>10}",
    ]
    stats = {}
    for name, values in factors.items():
        stats[name] = (
            float(values.mean()),
            float(np.percentile(values, 90)),
            float(values.max()),
            float((values < 1.001).mean() * 100),
        )
        mean, p90, worst, pct = stats[name]
        lines.append(
            f"  {name:<14} {mean:8.3f} {p90:8.3f} {worst:8.2f} {pct:9.0f}%"
        )
        benchmark.extra_info[name] = {
            "mean": round(mean, 4),
            "max": round(worst, 3),
            "pct_optimal": round(pct, 1),
        }
    text = "\n".join(lines)
    print("\n" + text)
    write_result("plan_quality", text)

    # Sanity: factors are always >= 1, and the sketch's estimates must
    # not produce worse plans on average than the weaker baseline.
    for values in factors.values():
        assert (values >= 1.0 - 1e-9).all()
    sketch_mean = stats["Deep Sketch"][0]
    worst_baseline_mean = max(stats["HyPer"][0], stats["PostgreSQL"][0])
    assert sketch_mean <= worst_baseline_mean * 1.05


def test_plan_quality_dp_vs_greedy(benchmark, imdb_full, truth_oracle):
    """Enumeration-strategy ablation under perfect estimates: DP is
    optimal by construction; greedy pays a measurable premium."""
    queries = [
        q
        for q in generate_job_light(imdb_full, JobLightConfig(n_queries=50, seed=8))
        if q.num_joins >= 2
    ]
    dp = PlanOptimizer(imdb_full, truth_oracle, strategy="dp")
    greedy = PlanOptimizer(imdb_full, truth_oracle, strategy="greedy")

    def run():
        ratios = []
        for query in queries:
            dp_cost = dp.true_cost_of(dp.optimize(query))
            greedy_cost = greedy.true_cost_of(greedy.optimize(query))
            ratios.append(greedy_cost / max(dp_cost, 1.0))
        return np.array(ratios)

    ratios = benchmark.pedantic(run, rounds=1, iterations=1)
    text = (
        "Enumeration ablation (greedy true cost / DP true cost, truth "
        f"estimates, n={len(queries)}):\n"
        f"  mean {ratios.mean():.3f}   p90 {np.percentile(ratios, 90):.3f}   "
        f"max {ratios.max():.3f}"
    )
    print("\n" + text)
    write_result("plan_quality_enumeration", text)
    benchmark.extra_info["mean_ratio"] = round(float(ratios.mean()), 4)
    assert (ratios >= 1.0 - 1e-9).all()

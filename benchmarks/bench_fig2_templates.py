"""Figure 2 — the demo's template query with overlaid estimates.

The paper's running example: a movie producer tracks the popularity of
the ``artificial-intelligence`` keyword over ``production_year``.  The
demo instantiates the template from the column sample, estimates every
instance with the Deep Sketch, HyPer, and PostgreSQL, executes the truth,
and plots the overlaid series.  This harness emits exactly those series
(as a text table — the chart's data), for both per-decade grouping and
equal-width buckets, and checks that the sketch's series tracks the true
trend at least as well as the baselines overall.
"""

from __future__ import annotations

import numpy as np

from repro.demo import run_template
from repro.metrics import geometric_mean_qerror, qerrors
from repro.workload import JoinEdge, Predicate, Query, QueryTemplate, TableRef

from conftest import write_result


def _keyword_template(db):
    """title ⋈ movie_keyword with a fixed popular keyword, year as
    placeholder (the paper's query without the dimension-table hop so
    that it stays inside the sketch's JOB-light table subset)."""
    mk = db.table("movie_keyword")
    popular = int(np.bincount(mk.column("keyword_id").values).argmax())
    base = Query(
        tables=(TableRef("title", "t"), TableRef("movie_keyword", "mk")),
        joins=(JoinEdge("mk", "movie_id", "t", "id"),),
        predicates=(Predicate("mk", "keyword_id", "=", popular),),
    )
    return QueryTemplate(base=base, alias="t", column="production_year")


def _series_table(result):
    return result.as_table()


def test_fig2_keyword_over_decades(
    benchmark, imdb_full, table1_sketch, baseline_estimators, truth_oracle
):
    sketch, _ = table1_sketch
    template = _keyword_template(imdb_full)
    estimators = [
        truth_oracle,
        baseline_estimators["HyPer"],
        baseline_estimators["PostgreSQL"],
    ]

    result = benchmark.pedantic(
        run_template,
        args=(sketch, template, estimators),
        kwargs={"mode": "width", "width": 10},
        rounds=1,
        iterations=1,
    )

    text = "Figure 2 series (keyword popularity per decade):\n" + _series_table(result)
    print("\n" + text)
    write_result("fig2_decades", text)

    truth = np.maximum(result.truth(), 1.0)
    scores = {}
    for system in (sketch.name, "HyPer", "PostgreSQL"):
        scores[system] = geometric_mean_qerror(
            qerrors(result.series[system].values, truth)
        )
        benchmark.extra_info[system] = round(scores[system], 3)
    # The sketch's series must track the truth at least as well as the
    # weaker of the two traditional estimators (paper: visibly closer).
    assert scores[sketch.name] <= max(scores["HyPer"], scores["PostgreSQL"])
    # And it must capture the trend: popular keywords concentrate in
    # recent decades, so the series must correlate with the truth.
    est = result.series[sketch.name].values
    corr = np.corrcoef(np.log1p(est), np.log1p(truth))[0, 1]
    benchmark.extra_info["log_trend_correlation"] = round(float(corr), 3)
    assert corr > 0.5


def test_fig2_equal_width_buckets(
    benchmark, imdb_full, table1_sketch, baseline_estimators, truth_oracle
):
    """The demo's second grouping mode: equally sized buckets between the
    sample min and max."""
    sketch, _ = table1_sketch
    template = _keyword_template(imdb_full)
    estimators = [truth_oracle, baseline_estimators["PostgreSQL"]]

    result = benchmark.pedantic(
        run_template,
        args=(sketch, template, estimators),
        kwargs={"mode": "buckets", "n_buckets": 8},
        rounds=1,
        iterations=1,
    )
    assert len(result.labels) == 8
    text = "Figure 2 series (8 equal-width buckets):\n" + _series_table(result)
    print("\n" + text)
    write_result("fig2_buckets", text)


def test_fig2_distinct_placeholder_instances(benchmark, imdb_full, table1_sketch):
    """Placeholder semantics: one instance per sampled distinct value,
    estimated in a single batched network pass."""
    sketch, _ = table1_sketch
    template = _keyword_template(imdb_full)

    def run():
        return run_template(sketch, template, [], mode="distinct", limit=40)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert 0 < len(result.labels) <= 40
    values = result.series[sketch.name].values
    assert np.isfinite(values).all()
    benchmark.extra_info["instances"] = len(result.labels)

"""0-tuple situations — the claim experiment from Section 2.

"One advantage of our approach over pure sampling-based cardinality
estimators is that it addresses 0-tuple situations, which is when no
sampled tuples qualify.  In such situations, sampling-based approaches
usually fall back to an 'educated' guess — causing large estimation
errors.  Our approach, in contrast, handles such situations reasonably
well."

The harness collects generated queries whose predicates match *no*
tuple in the sketch's samples but whose true cardinality is positive,
then compares q-errors: the Deep Sketch must beat the pure-sampling
estimator (same samples, no model) decisively on this slice.
"""

from __future__ import annotations

import numpy as np

from repro.db import execute_count
from repro.metrics import format_table, qerrors, summarize_qerrors
from repro.sampling import is_zero_tuple
from repro.workload import TrainingQueryGenerator, WorkloadSpec, spec_for_imdb

from conftest import write_result


def _collect_zero_tuple_queries(db, samples, n_wanted=40, seed=909):
    """Generated queries that are 0-tuple w.r.t. ``samples`` yet non-empty."""
    base = spec_for_imdb()
    spec = WorkloadSpec(
        tables=base.tables,
        aliases=base.aliases,
        predicate_columns=base.predicate_columns,
        max_joins=base.max_joins,
        literal_distribution="distinct",  # tail literals -> 0-tuple regime
    )
    generator = TrainingQueryGenerator(db, spec, seed=seed)
    queries, truths = [], []
    attempts = 0
    while len(queries) < n_wanted and attempts < 30_000:
        attempts += 1
        query = generator.draw()
        if not query.predicates:
            continue
        if not is_zero_tuple(samples, query):
            continue
        truth = execute_count(db, query)
        if truth <= 0:
            continue
        queries.append(query)
        truths.append(float(truth))
    return queries, np.array(truths)


def test_zero_tuple_qerrors(
    benchmark, imdb_full, table1_sketch, baseline_estimators
):
    sketch, _ = table1_sketch

    def run():
        queries, truths = _collect_zero_tuple_queries(imdb_full, sketch.samples)
        estimates = {
            "Deep Sketch": sketch.estimate_many(queries),
            "Sampling": np.array(
                [baseline_estimators["Sampling"].estimate(q) for q in queries]
            ),
            "HyPer": np.array(
                [baseline_estimators["HyPer"].estimate(q) for q in queries]
            ),
            "PostgreSQL": np.array(
                [baseline_estimators["PostgreSQL"].estimate(q) for q in queries]
            ),
        }
        return queries, truths, estimates

    queries, truths, estimates = benchmark.pedantic(run, rounds=1, iterations=1)
    assert len(queries) >= 15, "not enough 0-tuple queries found"

    rows = {
        name: summarize_qerrors(qerrors(est, truths))
        for name, est in estimates.items()
    }
    table = format_table(rows, f"0-tuple situations (n={len(queries)})")
    print("\n" + table)
    write_result("zero_tuple", table)
    for name, summary in rows.items():
        benchmark.extra_info[name] = summary.as_dict()

    # The paper's claim: the learned model degrades gracefully where
    # pure sampling has lost all signal.
    assert rows["Deep Sketch"].median <= rows["Sampling"].median
    assert rows["Deep Sketch"].mean <= rows["Sampling"].mean
    assert rows["Deep Sketch"].p95 <= rows["Sampling"].p95

"""Lifecycle: drift detection -> shadow refresh -> zero-drop hot swap.

The paper closes by calling for automation of "the training and
utilization of Deep Sketches in query optimizers"; the lifecycle
subsystem (:mod:`repro.serve.lifecycle`) is that automation.  This
harness measures and gates its serving-side contract end to end:

* **drift -> shadow -> swap** — a sketch is trained and served, the
  database is mutated underneath it (production years shifted three
  decades), and one :meth:`LifecycleManager.run_once` pass must detect
  the drift, shadow-refresh a replacement off the serving path, publish
  it to the versioned :class:`~repro.serve.registry.SketchRegistry`,
  and hot-swap it in;
* **zero-drop swaps under live load** — a
  :class:`~repro.workload.traffic.TrafficShaper` replays skewed/bursty
  open-loop traffic at the engine while a registry rollback and a
  re-activation swap fire mid-stream.  The audit: zero hung futures,
  failures only as structured codes, and **no response answered by a
  retired snapshot version after its swap completed** — every response
  carries the serving sketch's ``token``, and each swap's barrier
  guarantees the old token never resolves after ``swap_sketch``
  returns;
* **swap latency** — the barrier wait of every swap fired under load is
  recorded and gated (a swap drains in-flight rounds, not the queue, so
  it must complete in well under a second on the tiny configuration);
* **rollback** — ``registry rollback`` + hot swap must leave the engine
  serving the original registry version, verified via
  ``describe_versions()``.

Every run writes machine-readable results to
``benchmarks/results/BENCH_lifecycle.json`` (sections + config + gates
+ pass) plus the human-readable ``bench_lifecycle.txt``.

With ``--shm`` the served engine runs the zero-copy process path
(``executor="process"`` with ``shm_snapshots`` + ``sticky_routing``):
the same drift/swap/rollback audit must hold when snapshots live in
shared-memory segments, and an additional gate asserts the segment
registry (and ``/dev/shm``) drained to empty after the rollback — a hot
swap under load must retire segments, never leak them.

Run from the repository root::

    python benchmarks/bench_lifecycle.py          # full (minutes)
    python benchmarks/bench_lifecycle.py --tiny   # CI smoke run (seconds)
    python benchmarks/bench_lifecycle.py --tiny --shm  # zero-copy engine
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import tempfile
import threading
import time

sys.path.insert(
    0, os.path.join(os.path.dirname(os.path.abspath(__file__)), "..", "src")
)

import numpy as np  # noqa: E402

from repro.core import SketchConfig, build_sketch  # noqa: E402
from repro.datasets import ImdbConfig, generate_imdb  # noqa: E402
from repro.demo import SketchManager  # noqa: E402
from repro.serve import (  # noqa: E402
    AsyncServeConfig,
    AsyncSketchServer,
    LifecycleConfig,
    LifecycleManager,
    SketchRegistry,
)
from repro.workload import (  # noqa: E402
    SuiteConfig,
    TrafficConfig,
    TrafficShaper,
    generate_template_suite,
    spec_for_imdb_templates,
)

#: The ``--tiny`` smoke configuration: small enough for CI seconds,
#: large enough that the replay spans the swaps fired under load.
TINY_LIFECYCLE_ARGS = {
    "scale": 0.06,
    "queries": 300,
    "epochs": 2,
    "samples": 50,
    "hidden": 16,
    "refresh_queries": 120,
    "refresh_epochs": 2,
    "requests": 360,
    "rate": 400.0,
}

#: Budget for one hot swap's barrier wait (seconds).  The barrier
#: drains only the rounds in flight at dict-replace time — micro-batch
#: work, not queue depth — so even the full configuration stays far
#: below this.
SWAP_LATENCY_BUDGET_S = 2.0


def apply_tiny_args(args) -> None:
    """Overwrite an argparse namespace with the tiny smoke configuration."""
    for key, value in TINY_LIFECYCLE_ARGS.items():
        setattr(args, key, value)


def _shift_years(db) -> None:
    """Mutate the database in place: shift production years 3 decades."""
    title = db.table("title")
    values = title.columns["production_year"].values
    values[:] = np.clip(values - 30, 1880, 2019)


def run(args) -> int:
    db = generate_imdb(ImdbConfig(scale=args.scale, seed=7))
    # One spec drives the sketch, the refresh, and the replayed suite,
    # so every replayed query routes to the managed sketch (and the
    # string-valued dimension tables exercise categorical drift too).
    spec = spec_for_imdb_templates(max_joins=2)

    print(
        f"building sketch (scale={args.scale}, {args.queries} queries, "
        f"{args.epochs} epochs)...",
        file=sys.stderr,
    )
    sketch, _ = build_sketch(
        db,
        spec,
        name="lifecycle-bench",
        config=SketchConfig(
            sample_size=args.samples,
            n_training_queries=args.queries,
            epochs=args.epochs,
            hidden_units=args.hidden,
            seed=args.seed,
        ),
    )

    suite = generate_template_suite(
        db,
        spec,
        SuiteConfig(n_templates=5, queries_per_template=16, max_joins=2),
        seed=args.seed,
    )

    manager = SketchManager(db=None)
    manager.register_sketch(sketch)
    text_lines: list[str] = []

    with tempfile.TemporaryDirectory() as registry_dir:
        registry = SketchRegistry(registry_dir)
        registry.save(sketch, note="initial build")

        if args.shm:
            serve_config = AsyncServeConfig(
                max_batch_size=64,
                executor="process",
                executor_workers=2,
                shm_snapshots=True,
                sticky_routing=True,
            )
        else:
            serve_config = AsyncServeConfig(max_batch_size=64)
        server = AsyncSketchServer(manager, serve_config).start()
        engine = server.engine
        lifecycle = LifecycleManager(
            server,
            db,
            {"lifecycle-bench": spec},
            registry=registry,
            config=LifecycleConfig(
                check_interval_s=0.1,
                refresh_queries=args.refresh_queries,
                refresh_epochs=args.refresh_epochs,
            ),
            seed=args.seed,
        )

        # Record every swap's barrier latency and the retired token.
        swap_events: list[dict] = []
        original_swap = engine.swap_sketch

        def timed_swap(name, replacement, timeout=30.0):
            t0 = time.perf_counter()
            old = original_swap(name, replacement, timeout=timeout)
            done = time.perf_counter()
            swap_events.append(
                {
                    "old_token": old.snapshot_token,
                    "new_token": replacement.snapshot_token,
                    "registry_version": replacement.metadata.get(
                        "registry_version"
                    ),
                    "latency_s": done - t0,
                    "done_at": done,
                }
            )
            return old

        engine.swap_sketch = timed_swap

        try:
            # -- drift -> shadow refresh -> swap (pass 1, no load) -----
            print(
                "mutating database and running one lifecycle pass "
                "(drift -> shadow refresh -> swap)...",
                file=sys.stderr,
            )
            _shift_years(db)
            t0 = time.perf_counter()
            outcome = lifecycle.run_once()
            pass_seconds = time.perf_counter() - t0
            lc_state = lifecycle.state()["sketches"]["lifecycle-bench"]
            drift_detected = (
                lc_state["last_drift"] is not None
                and lc_state["refreshes"] == 1
            )
            refreshed_ok = outcome.get("lifecycle-bench") == "idle"
            text_lines += [
                f"drift -> swap     : pass took {pass_seconds:7.2f}s, "
                f"drift {lc_state['last_drift'] if lc_state['last_drift'] is None else round(lc_state['last_drift'], 3)}, "
                f"outcome {outcome['lifecycle-bench']!r}, "
                f"{lc_state['refreshes']} refresh(es)",
                f"registry          : versions "
                f"{sorted(registry.versions('lifecycle-bench'))}, active "
                f"v{registry.active_version('lifecycle-bench')}",
            ]

            # -- swaps + rollback under live replay --------------------
            print(
                f"replaying {args.requests} open-loop requests while a "
                "rollback and a re-activation swap fire...",
                file=sys.stderr,
            )
            responses: list[tuple] = []
            responses_lock = threading.Lock()

            def on_response(response, resolved_at):
                with responses_lock:
                    responses.append(
                        (response.ok, response.code, response.token, resolved_at)
                    )

            shaper = TrafficShaper(
                suite,
                TrafficConfig(
                    n_requests=args.requests,
                    rate_qps=args.rate,
                    burst_on_s=0.05,
                    burst_off_s=0.05,
                ),
                seed=args.seed + 1,
            )
            replay_box: dict = {}

            def replay_body():
                replay_box["result"] = shaper.replay(
                    server, on_response=on_response
                )

            replay_thread = threading.Thread(target=replay_body)
            replay_thread.start()
            time.sleep(0.2)
            load_live_at_rollback = replay_thread.is_alive()
            rolled_to = lifecycle.rollback("lifecycle-bench")
            time.sleep(0.2)
            # Re-activate the refreshed version (a fresh load gives a
            # fresh process-local token, so this retires the rollback's
            # token just like a real deployment would).
            registry.activate("lifecycle-bench", 2)
            engine.swap_sketch(
                "lifecycle-bench", registry.load("lifecycle-bench", 2)
            )
            load_live_at_swap = replay_thread.is_alive()
            replay_thread.join()
            replay = replay_box["result"]

            versions = engine.describe_versions()["lifecycle-bench"]
            stats = engine.stats()
        finally:
            server.close()

        # -- shm lifecycle: the swaps and the close must leak nothing --
        from repro.serve import live_segment_names
        from repro.serve.shm import SEGMENT_PREFIX

        leaked_segments = sorted(live_segment_names())
        if os.path.isdir("/dev/shm"):
            mine = f"{SEGMENT_PREFIX}_{os.getpid()}_"
            leaked_segments += sorted(
                p for p in os.listdir("/dev/shm") if p.startswith(mine)
            )

        # -- token accounting: no retired version after its swap -------
        # Each swap's barrier drains every round holding the old sketch
        # before swap_sketch returns, so an ok response carrying a
        # retired token must have resolved before that swap's done_at.
        n_late_retired = 0
        for ok, _code, token, resolved_at in responses:
            if not ok or token is None:
                continue
            for event in swap_events:
                if token == event["old_token"] and resolved_at > event["done_at"]:
                    n_late_retired += 1
        served_tokens = sorted(
            {t for ok, _c, t, _at in responses if ok and t is not None}
        )
        swap_latencies = [e["latency_s"] for e in swap_events]

        text_lines += [
            "",
            f"replay            : {replay.n_ok}/{replay.n_requests} served, "
            f"{replay.n_failed} structured failures, "
            f"{replay.n_unresolved} hung, "
            f"{replay.n_unstructured} unstructured "
            f"({replay.achieved_qps:7.0f} q/s)",
            f"swaps under load  : rollback to v{rolled_to} + re-activate v2 "
            f"({len(swap_events)} swaps total; load live: "
            f"{load_live_at_rollback}/{load_live_at_swap})",
            f"swap latency      : max {max(swap_latencies) * 1000:7.2f}ms "
            f"over {len(swap_latencies)} swap(s) "
            f"(budget {SWAP_LATENCY_BUDGET_S * 1000:.0f}ms)",
            f"token audit       : {len(served_tokens)} distinct snapshot "
            f"versions answered; {n_late_retired} response(s) from a "
            f"retired version after its swap completed",
            f"final version     : registry v{versions['registry_version']} "
            f"(rollbacks recorded: {stats['lifecycle']['rollbacks']})",
        ]
        text = "\n".join(text_lines)
        print(text)

        # ------------------------------------------------------------------
        # gates
        # ------------------------------------------------------------------
        gates = {
            # One pass turned mutated data into a refreshed, swapped-in
            # sketch (shadow training off the serving path).
            "drift_detected": drift_detected,
            "shadow_refresh_swapped": refreshed_ok,
            "registry_has_both_versions": sorted(
                registry.versions("lifecycle-bench")
            ) == [1, 2],
            # The zero-drop hot-swap contract under concurrent load.
            "zero_hung_futures": replay.zero_hung,
            "structured_codes_only": replay.structured_only,
            "accounting": replay.n_ok + replay.n_failed == replay.n_requests,
            "served_any": replay.n_ok > 0,
            "no_retired_version_answers": n_late_retired == 0,
            "swap_latency_bounded": (
                max(swap_latencies) <= SWAP_LATENCY_BUDGET_S
            ),
            "swaps_fired_under_load": load_live_at_rollback or load_live_at_swap,
            # Rollback restored the original registry version end to end
            # (and the follow-up swap re-activated the refresh).
            "rollback_restored_v1": rolled_to == 1,
            "final_version_consistent": versions["registry_version"] == 2,
            "rollback_recorded": stats["lifecycle"]["rollbacks"] == 1,
            # Shared-memory segments (published at all only with --shm)
            # must all be unlinked once the swaps and the close settle.
            "no_leaked_segments": leaked_segments == [],
        }
        ok = all(gates.values())

        payload = {
            "lifecycle_pass": {
                "seconds": pass_seconds,
                "drift": lc_state["last_drift"],
                "outcome": outcome,
                "state": lc_state,
            },
            "replay": replay.audit(),
            "swaps": [
                {k: v for k, v in event.items() if k != "done_at"}
                for event in swap_events
            ],
            "swap_latency_budget_s": SWAP_LATENCY_BUDGET_S,
            "token_audit": {
                "distinct_versions_served": served_tokens,
                "late_retired_answers": n_late_retired,
            },
            "registry": registry.describe(),
            "final_versions": versions,
            "leaked_segments": leaked_segments,
            "config": {
                "mode": "tiny" if args.tiny else "full",
                "shm": bool(args.shm),
                "scale": args.scale,
                "queries": args.queries,
                "epochs": args.epochs,
                "samples": args.samples,
                "hidden": args.hidden,
                "refresh_queries": args.refresh_queries,
                "refresh_epochs": args.refresh_epochs,
                "requests": args.requests,
                "rate_qps": args.rate,
                "seed": args.seed,
            },
            "gates": gates,
            "pass": ok,
        }

    results_dir = os.path.join(
        os.path.dirname(os.path.abspath(__file__)), "results"
    )
    os.makedirs(results_dir, exist_ok=True)
    with open(os.path.join(results_dir, "bench_lifecycle.txt"), "w") as f:
        f.write(text.rstrip() + "\n")
    with open(os.path.join(results_dir, "BENCH_lifecycle.json"), "w") as f:
        json.dump(payload, f, indent=2)
        f.write("\n")

    for gate, passed in gates.items():
        if not passed:
            print(f"FAIL: gate {gate!r} failed", file=sys.stderr)
    if ok:
        print(
            f"PASS: drift {lc_state['last_drift']:.3f} -> shadow refresh -> "
            f"swap; {len(swap_events)} swaps (max barrier "
            f"{max(swap_latencies) * 1000:.1f}ms), "
            f"{replay.n_ok}/{replay.n_requests} served under load, 0 hung, "
            f"0 retired-version answers, rollback restored v1",
            file=sys.stderr,
        )
    return 0 if ok else 1


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--scale", type=float, default=0.2,
                        help="synthetic IMDb scale factor")
    parser.add_argument("--queries", type=int, default=3000,
                        help="training queries for the served sketch")
    parser.add_argument("--epochs", type=int, default=8)
    parser.add_argument("--samples", type=int, default=300)
    parser.add_argument("--hidden", type=int, default=64)
    parser.add_argument("--refresh-queries", dest="refresh_queries",
                        type=int, default=800,
                        help="fine-tuning queries per shadow refresh")
    parser.add_argument("--refresh-epochs", dest="refresh_epochs",
                        type=int, default=4)
    parser.add_argument("--requests", type=int, default=600,
                        help="open-loop replay requests under the swaps")
    parser.add_argument("--rate", type=float, default=400.0,
                        help="arrival rate inside ON windows (q/s)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--tiny", action="store_true",
                        help="smoke-test configuration for CI (seconds)")
    parser.add_argument("--shm", action="store_true",
                        help="serve through the zero-copy process engine "
                        "(shm_snapshots + sticky_routing) and gate on no "
                        "leaked segments")
    args = parser.parse_args(argv)
    if args.tiny:
        apply_tiny_args(args)
    return run(args)


if __name__ == "__main__":
    sys.exit(main())
